package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mao/internal/pass"
)

// sleepPass blocks for ms[N] milliseconds (default 10), honoring the
// run context — the knob the admission, deadline and drain tests use
// to hold workers busy deterministically.
type sleepPass struct{}

func (sleepPass) Name() string        { return "SLEEPTEST" }
func (sleepPass) Description() string { return "test pass that sleeps" }

// Effectful: the sleep is the point — memoizing it away would let
// repeat content skip the delay the timing tests depend on.
func (sleepPass) Effectful() bool { return true }
func (sleepPass) RunUnit(ctx *pass.Ctx) (bool, error) {
	d := time.Duration(ctx.Opts.Int("ms", 10)) * time.Millisecond
	select {
	case <-time.After(d):
		return false, nil
	case <-ctx.Context().Done():
		return false, ctx.Context().Err()
	}
}

func init() {
	if pass.Lookup("SLEEPTEST") == nil {
		pass.Register(func() pass.Pass { return sleepPass{} })
	}
}

const testSource = `	.text
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
.Lz:
	ret
	.size f,.-f
`

// testServer boots a Server plus an httptest front end and tears both
// down with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postOptimize sends one request and decodes the response body.
func postOptimize(t *testing.T, url string, req *OptimizeRequest) (int, *OptimizeResponse, *errorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out OptimizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
		return resp.StatusCode, &out, nil
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &out
}

func TestOptimizeBasic(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Source: testSource, Spec: "REDTEST:REDMOV",
	})
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if strings.Contains(out.Assembly, "testl") {
		t.Error("redundant test survived the pipeline")
	}
	if !strings.Contains(out.Assembly, "movq\t%rdx, %rcx") {
		t.Errorf("REDMOV rewrite missing:\n%s", out.Assembly)
	}
	if out.Stats["REDTEST"]["removed"] != 1 {
		t.Errorf("stats = %v", out.Stats)
	}
	if out.Cached {
		t.Error("first request reported cached")
	}
	if out.BatchSize < 1 {
		t.Errorf("batch size = %d", out.BatchSize)
	}
}

func TestOptimizeEmptySpecNormalizes(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource})
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(out.Assembly, "subl\t$16, %r15d") {
		t.Errorf("canonical emission missing:\n%s", out.Assembly)
	}
}

func TestOptimizeCheckDiagnostics(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Name: "my.s", Source: testSource,
		Options: OptimizeOptions{Check: true},
	})
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Diags == nil {
		t.Fatal("check requested but diags absent")
	}
	found := false
	for _, d := range out.Diags {
		if d.File != "my.s" {
			t.Errorf("diag file = %q, want my.s", d.File)
		}
		if d.Rule == "reg-uninit" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a reg-uninit warning for %%r15d, got %v", out.Diags)
	}
}

func TestOptimizeValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		req  *OptimizeRequest
		want int
	}{
		{"missing source", &OptimizeRequest{Spec: "REDTEST"}, 400},
		{"unknown pass", &OptimizeRequest{Source: testSource, Spec: "NOSUCHPASS"}, 400},
		{"ASM rejected", &OptimizeRequest{Source: testSource, Spec: "REDTEST:ASM"}, 400},
		{"dump rejected", &OptimizeRequest{Source: testSource, Spec: "REDTEST=dump_after[x]"}, 400},
		{"negative deadline", &OptimizeRequest{Source: testSource, Options: OptimizeOptions{DeadlineMS: -1}}, 400},
		{"unparsable source", &OptimizeRequest{Source: "\tthisisnotx86 %zz9, %qq3\n"}, 422},
	}
	for _, c := range cases {
		code, _, errResp := postOptimize(t, ts.URL, c.req)
		if code != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, code, c.want)
		} else if errResp.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}
	// Malformed JSON and wrong method/path.
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != 405 {
		t.Errorf("GET /v1/optimize: status = %d, want 405", getResp.StatusCode)
	}
}

func TestOptimizeBodyTooLarge(t *testing.T) {
	_, ts := testServer(t, Config{MaxSourceBytes: 128})
	code, _, errResp := postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource})
	if code != 413 {
		t.Fatalf("status = %d, want 413", code)
	}
	if !strings.Contains(errResp.Error, "exceeds") {
		t.Errorf("error = %q", errResp.Error)
	}
}

func TestResultCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST"}
	_, first, _ := postOptimize(t, ts.URL, req)
	code, second, _ := postOptimize(t, ts.URL, req)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if second.Assembly != first.Assembly {
		t.Error("cached assembly differs from computed")
	}
	if h := s.results.hits.Load(); h != 1 {
		t.Errorf("result cache hits = %d, want 1", h)
	}
	// A no_cache request bypasses the cache but still answers.
	req.Options.NoCache = true
	_, third, _ := postOptimize(t, ts.URL, req)
	if third.Cached {
		t.Error("no_cache request served from cache")
	}
	// A different spec misses.
	_, fourth, _ := postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource, Spec: "REDMOV"})
	if fourth.Cached {
		t.Error("different spec hit the cache")
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmissionControl(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers: 1, QueueDepth: 1, BatchMax: 1, BatchWindow: time.Millisecond,
	})
	type result struct {
		code int
	}
	results := make(chan result, 2)
	slow := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]"}
	go func() {
		code, _, _ := postOptimize(t, ts.URL, slow)
		results <- result{code}
	}()
	waitFor(t, "first job in flight", func() bool { return s.inflight.Load() == 1 })
	go func() {
		// Vary no_cache so the second request misses the result cache.
		code, _, _ := postOptimize(t, ts.URL, &OptimizeRequest{
			Source: testSource, Spec: "SLEEPTEST=ms[400]",
			Options: OptimizeOptions{NoCache: true},
		})
		results <- result{code}
	}()
	waitFor(t, "second job queued", func() bool { return s.queued.Load() == 1 })

	// Queue is now full: the next request must be turned away with 429
	// and a Retry-After hint, without waiting.
	body, _ := json.Marshal(&OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]", Name: "third.s"})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	if s.met.queueRejects.Load() == 0 {
		t.Error("queue reject not counted")
	}
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != 200 {
			t.Errorf("admitted request %d finished with %d", i, r.code)
		}
	}
}

func TestRequestDeadline(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	code, _, errResp := postOptimize(t, ts.URL, &OptimizeRequest{
		Source: testSource, Spec: "SLEEPTEST=ms[2000]",
		Options: OptimizeOptions{DeadlineMS: 60},
	})
	if code != 504 {
		t.Fatalf("status = %d, want 504", code)
	}
	if !strings.Contains(errResp.Error, "deadline") {
		t.Errorf("error = %q", errResp.Error)
	}
}

func TestDeadlineWhileQueuedSkipsExecution(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers: 1, QueueDepth: 4, BatchMax: 1, BatchWindow: time.Millisecond,
	})
	done := make(chan int, 1)
	go func() {
		code, _, _ := postOptimize(t, ts.URL, &OptimizeRequest{
			Source: testSource, Spec: "SLEEPTEST=ms[300]",
		})
		done <- code
	}()
	waitFor(t, "slow job in flight", func() bool { return s.inflight.Load() == 1 })

	// This request's deadline expires while it waits for the only
	// worker; it must come back 504 and never occupy the worker.
	code, _, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Source: testSource, Spec: "SLEEPTEST=ms[300]",
		Options: OptimizeOptions{DeadlineMS: 50, NoCache: true},
	})
	if code != 504 {
		t.Fatalf("queued request status = %d, want 504", code)
	}
	if c := <-done; c != 200 {
		t.Errorf("slow request status = %d", c)
	}
	waitFor(t, "queue to drain", func() bool { return s.queued.Load() == 0 })
}

func TestHealthAndReady(t *testing.T) {
	s, ts := testServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
	s.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("readyz after Close = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Errorf("healthz after Close = %d, want 200 (process is alive)", hresp.StatusCode)
	}
}

func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	_, ts := testServer(t, Config{AccessLog: &buf})
	postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource})
	http.Get(ts.URL + "/healthz")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("access log lines = %d, want >= 2:\n%s", len(lines), buf.String())
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Method != "POST" || rec.Path != "/v1/optimize" || rec.Status != 200 {
		t.Errorf("access record = %+v", rec)
	}
	if rec.Time == "" || rec.Remote == "" {
		t.Errorf("access record missing fields: %+v", rec)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDrainCompletesInFlight(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers: 1, QueueDepth: 8, BatchMax: 1, BatchWindow: time.Millisecond,
	})
	results := make(chan int, 3)
	submit := func(name string) {
		code, _, _ := postOptimize(t, ts.URL, &OptimizeRequest{
			Name: name, Source: testSource, Spec: "SLEEPTEST=ms[150]",
		})
		results <- code
	}
	go submit("a.s")
	waitFor(t, "first job in flight", func() bool { return s.inflight.Load() == 1 })
	go submit("b.s")
	go submit("c.s")
	waitFor(t, "two jobs queued", func() bool { return s.queued.Load() == 2 })

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	waitFor(t, "drain to begin", s.Draining)

	// Every admitted request completes successfully: zero dropped.
	for i := 0; i < 3; i++ {
		if code := <-results; code != 200 {
			t.Errorf("in-flight request %d finished with %d during drain", i, code)
		}
	}
	<-closed

	// Admission is closed: a post-drain request is refused with 503.
	code, _, errResp := postOptimize(t, ts.URL, &OptimizeRequest{
		Name: "late.s", Source: testSource, Spec: "SLEEPTEST=ms[1]",
	})
	if code != 503 {
		t.Errorf("post-drain status = %d, want 503", code)
	}
	if errResp != nil && !strings.Contains(errResp.Error, "draining") {
		t.Errorf("post-drain error = %q", errResp.Error)
	}
	if s.queued.Load() != 0 || s.inflight.Load() != 0 {
		t.Errorf("residual work after drain: queued=%d inflight=%d",
			s.queued.Load(), s.inflight.Load())
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(Config{})
	s.Close()
	s.Close()
}

func TestBatchingGroupsSameSpec(t *testing.T) {
	out := make(chan *batch, 8)
	b := newBatcher(time.Hour, 3, out) // window never fires; max drives dispatch
	mk := func(spec, name string) *job {
		return &job{req: &OptimizeRequest{Spec: spec, Name: name}}
	}
	b.add(mk("A", "1"))
	b.add(mk("B", "2"))
	b.add(mk("A", "3"))
	b.add(mk("A", "4")) // A reaches max=3 → dispatches
	select {
	case bt := <-out:
		if bt.spec != "A" || len(bt.jobs) != 3 {
			t.Errorf("full batch = %s/%d, want A/3", bt.spec, len(bt.jobs))
		}
	default:
		t.Fatal("full batch not dispatched")
	}
	// closeFlush dispatches the remainder (B with 1 job, nothing else).
	b.closeFlush()
	close(out)
	var rest []*batch
	for bt := range out {
		rest = append(rest, bt)
	}
	if len(rest) != 1 || rest[0].spec != "B" || len(rest[0].jobs) != 1 {
		t.Fatalf("flushed %d batches, want exactly B/1", len(rest))
	}
}

func TestBatchWindowDispatches(t *testing.T) {
	out := make(chan *batch, 1)
	b := newBatcher(5*time.Millisecond, 100, out)
	b.add(&job{req: &OptimizeRequest{Spec: "A"}})
	select {
	case bt := <-out:
		if len(bt.jobs) != 1 {
			t.Errorf("batch size = %d", len(bt.jobs))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window timer never dispatched the batch")
	}
}

func TestEndToEndBatchAmortization(t *testing.T) {
	// A slow head-of-line job holds the only worker while same-spec
	// followers arrive within a generous batch window, so they must
	// dispatch as one batch.
	s, ts := testServer(t, Config{
		Workers: 1, QueueDepth: 16, BatchMax: 16, BatchWindow: 500 * time.Millisecond,
	})
	blockDone := make(chan struct{})
	go func() {
		postOptimize(t, ts.URL, &OptimizeRequest{
			Source: testSource, Spec: "SLEEPTEST=ms[900]",
		})
		close(blockDone)
	}()
	waitFor(t, "blocker in flight", func() bool { return s.inflight.Load() == 1 })

	const n = 4
	codes := make(chan *OptimizeResponse, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, out, _ := postOptimize(t, ts.URL, &OptimizeRequest{
				Name: fmt.Sprintf("u%d.s", i), Source: testSource, Spec: "REDTEST",
			})
			codes <- out
		}(i)
	}
	waitFor(t, "followers queued", func() bool { return s.queued.Load() == n })
	<-blockDone
	sum := 0
	for i := 0; i < n; i++ {
		out := <-codes
		if out == nil {
			t.Fatal("follower failed")
		}
		sum += out.BatchSize
	}
	// All four same-spec units shared one batch: each reports batch
	// size n, so the sum is n².
	if sum != n*n {
		t.Errorf("batch sizes sum = %d, want %d (one batch of %d)", sum, n*n, n)
	}
	if got := s.met.batchJobsTotal.Load(); got < int64(n)+1 {
		t.Errorf("batch jobs total = %d", got)
	}
}
