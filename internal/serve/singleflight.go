package serve

import (
	"context"
	"sync"
)

// In-flight miss coalescing (MAOMEMO): concurrent requests with the
// same result-cache key that all miss share ONE pipeline run. The
// first misser — the leader — admits a job as usual; everyone arriving
// while that run is in flight waits on it instead of consuming a queue
// slot, and receives the shared result the moment it lands. The run is
// detached from any single waiter's context: one waiter canceling (or
// its deadline expiring) never aborts the run for the others, and only
// the LAST waiter leaving cancels it. Requests with no_cache or ?trace
// never coalesce — the first asked for a fresh run, the second needs
// its own span tree.

// flightGroup indexes in-flight shared runs by result-cache key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// flight is one shared run. Waiters block on done; res is valid once
// done closes. refs counts participants (leader included) still
// waiting; published flips when the result lands.
type flight struct {
	g    *flightGroup
	key  string
	done chan struct{}
	res  jobResult

	refs      int
	published bool
	cancel    context.CancelFunc
}

// join returns the in-flight run for key, creating one when absent.
// The second result reports leadership: the leader must drive the run
// and publish exactly once on every path; any participant that stops
// waiting before the publish must leave.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.refs++
		return f, false
	}
	f := &flight{g: g, key: key, done: make(chan struct{}), refs: 1}
	g.m[key] = f
	return f, true
}

// setCancel installs the shared run's cancel func. Leader only, before
// admission — so by the time any follower can observe a flight worth
// canceling, the func is in place.
func (f *flight) setCancel(cancel context.CancelFunc) {
	f.g.mu.Lock()
	f.cancel = cancel
	f.g.mu.Unlock()
}

// publish posts the shared result, wakes every waiter and retires the
// flight: later same-key arrivals hit the result cache or start a
// fresh run. Exactly one publish per flight.
func (f *flight) publish(res jobResult) {
	g := f.g
	g.mu.Lock()
	f.res = res
	f.published = true
	cancel := f.cancel
	if g.m[f.key] == f {
		delete(g.m, f.key)
	}
	g.mu.Unlock()
	close(f.done)
	if cancel != nil {
		cancel() // release the detached run context's deadline timer
	}
}

// leave drops one waiter before the publish (its own request died).
// The last waiter out cancels the shared run — nobody is left to
// consume it — and unmaps the flight so a later arrival starts fresh
// instead of adopting a doomed run. The canceled job still posts a
// result (workers always do), which publish then delivers to no one.
func (f *flight) leave() {
	g := f.g
	g.mu.Lock()
	f.refs--
	var cancel context.CancelFunc
	if f.refs == 0 && !f.published {
		if g.m[f.key] == f {
			delete(g.m, f.key)
		}
		cancel = f.cancel
	}
	g.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
