package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestOptimizeExplain: ?explain=1 returns per-instruction lineage, the
// synthesized/transformed instructions carry real NAME[idx] refs, and
// the explain response is cached separately from the plain one.
func TestOptimizeExplain(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	body, _ := json.Marshal(&OptimizeRequest{Source: testSource, Spec: "REDTEST:REDMOV"})
	resp, err := http.Post(ts.URL+"/v1/optimize?explain=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Lineage) == 0 {
		t.Fatal("explain=1 returned no lineage")
	}
	var mutated int
	for _, l := range out.Lineage {
		if l.LastMutator == "" {
			continue
		}
		mutated++
		// REDMOV[1] rewrote the duplicate load in testSource.
		if !strings.HasPrefix(l.LastMutator, "REDMOV[") && !strings.HasPrefix(l.LastMutator, "REDTEST[") {
			t.Errorf("unexpected mutator ref %q on %q", l.LastMutator, l.Text)
		}
	}
	if mutated == 0 {
		t.Error("no instruction attributed to a pass")
	}

	// The plain request must not be served the explain-shaped cache
	// entry (and vice versa).
	status, plain, _ := postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource, Spec: "REDTEST:REDMOV"})
	if status != http.StatusOK {
		t.Fatalf("plain request status %d", status)
	}
	if len(plain.Lineage) != 0 {
		t.Error("plain request served lineage from the explain cache entry")
	}
	if plain.Assembly != out.Assembly {
		t.Error("explain changed the optimized assembly")
	}
}

// TestMetricsPassHistograms: completed requests feed per-pass latency
// histograms into /metrics.
func TestMetricsPassHistograms(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	if status, _, _ := postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource, Spec: "REDTEST:REDMOV"}); status != http.StatusOK {
		t.Fatalf("optimize status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`maod_pass_duration_seconds_bucket{pass="REDTEST",le="+Inf"} 1`,
		`maod_pass_duration_seconds_count{pass="REDMOV"} 1`,
		`maod_pass_duration_seconds_sum{pass="REDTEST"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugHandlerSeparation: pprof is reachable on the debug handler
// and absent from the service handler.
func TestDebugHandlerSeparation(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/scope/recent"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("service handler exposes %s: status %d", path, resp.StatusCode)
		}
	}

	// The debug handler serves the pprof index.
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("debug handler pprof index: status %d body %q", rec.Code, rec.Body.String())
	}
}
