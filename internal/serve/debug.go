package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug plane served on maod's opt-in debug
// listener (-debug-addr): the net/http/pprof profiling endpoints under
// /debug/pprof/. It is deliberately a separate handler instead of
// extra routes on Handler(): profiles expose internals (memory
// contents, goroutine stacks, timing side channels) that must never
// ride on the service port. The main handler serves nothing under
// /debug/, which the tests pin.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
