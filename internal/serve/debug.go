package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug plane served on maod's opt-in debug
// listener (-debug-addr): the net/http/pprof profiling endpoints under
// /debug/pprof/ and the MAOSCOPE flight recorder under /debug/scope/.
// It is deliberately a separate handler instead of extra routes on
// Handler(): profiles and flight records expose internals (memory
// contents, goroutine stacks, other tenants' request metadata, timing
// side channels) that must never ride on the service port. The main
// handler serves nothing under /debug/, which the tests pin.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/scope/recent", func(w http.ResponseWriter, r *http.Request) {
		writeFlightView(w, "maod", "recent", s.flight.Recent(), 0)
	})
	mux.HandleFunc("GET /debug/scope/slowest", func(w http.ResponseWriter, r *http.Request) {
		writeFlightView(w, "maod", "slowest", s.flight.Slowest(), 0)
	})
	mux.HandleFunc("GET /debug/scope/errors", func(w http.ResponseWriter, r *http.Request) {
		recs, seen := s.flight.Errors()
		writeFlightView(w, "maod", "errors", recs, seen)
	})
	return mux
}
