package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// postRaw sends one optimize request and returns status, decoded body
// (nil on error statuses) and the X-Mao-Cache verdict.
func postRaw(t *testing.T, url string, req *OptimizeRequest) (int, *OptimizeResponse, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	verdict := resp.Header.Get(cacheHeader)
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, nil, verdict
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	return resp.StatusCode, &out, verdict
}

// TestCoalesceSharesOneRun: K concurrent identical misses execute ONE
// pipeline run — one leader ("miss"), K-1 followers ("coalesced") that
// consume no queue slot — and every caller gets the identical answer.
// The result cache is disabled so only coalescing can deduplicate.
func TestCoalesceSharesOneRun(t *testing.T) {
	const followers = 6
	s, ts := testServer(t, Config{ResultCacheEntries: -1})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[250]:REDTEST"}

	type answer struct {
		status  int
		resp    *OptimizeResponse
		verdict string
	}
	answers := make([]answer, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp, v := postRaw(t, ts.URL, req)
			answers[i] = answer{st, resp, v}
		}(i)
		if i == 0 {
			// Let the leader admit before the followers arrive.
			time.Sleep(50 * time.Millisecond)
		}
	}
	wg.Wait()

	misses, coalesced := 0, 0
	for i, a := range answers {
		if a.status != 200 {
			t.Fatalf("caller %d: status %d", i, a.status)
		}
		if a.resp.Assembly != answers[0].resp.Assembly {
			t.Errorf("caller %d: assembly differs from the leader's", i)
		}
		switch a.verdict {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("caller %d: verdict %q", i, a.verdict)
		}
	}
	if misses != 1 || coalesced != followers {
		t.Errorf("verdicts: %d miss / %d coalesced, want 1/%d", misses, coalesced, followers)
	}
	if got := s.met.batchJobsTotal.Load(); got != 1 {
		t.Errorf("pipeline executed %d jobs, want 1 (coalescing failed to share the run)", got)
	}
	if got := s.met.coalescedTotal.Load(); got != followers {
		t.Errorf("maod_coalesced_total = %d, want %d", got, followers)
	}
}

// TestCoalesceDisabled: with DisableCoalesce every identical miss
// admits its own run.
func TestCoalesceDisabled(t *testing.T) {
	const n = 4
	s, ts := testServer(t, Config{ResultCacheEntries: -1, DisableCoalesce: true})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[100]:REDTEST"}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st, _, v := postRaw(t, ts.URL, req); st != 200 || v != "miss" {
				t.Errorf("status %d verdict %q, want 200 miss", st, v)
			}
		}()
	}
	wg.Wait()
	if got := s.met.batchJobsTotal.Load(); got != n {
		t.Errorf("pipeline executed %d jobs, want %d with coalescing disabled", got, n)
	}
}

// TestCoalesceCloseMidFlight: Server.Close while a coalesced flight is
// running lets the admitted run finish (drain semantics), so every
// waiter — leader and followers — receives the shared 200. Nobody
// hangs, and Close returns.
func TestCoalesceCloseMidFlight(t *testing.T) {
	const followers = 4
	s, ts := testServer(t, Config{ResultCacheEntries: -1})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]:REDTEST"}

	statuses := make([]int, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = postRaw(t, ts.URL, req)
		}(i)
		if i == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	time.Sleep(150 * time.Millisecond) // all waiters joined, run mid-sleep

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against the coalesced flight")
	}
	for i, st := range statuses {
		// The admitted run drains to completion: everyone shares its 200.
		// (503 would also be clean, but drain semantics guarantee better.)
		if st != 200 {
			t.Errorf("caller %d: status %d after mid-flight Close", i, st)
		}
	}
}

// TestCoalesceLeaderRefusalFansOut: when the leader cannot admit (the
// server is draining), it publishes the refusal — followers get a
// clean 503 immediately instead of hanging on a run that never starts.
func TestCoalesceLeaderRefusalFansOut(t *testing.T) {
	s, ts := testServer(t, Config{ResultCacheEntries: -1})
	s.Close() // draining: admission refuses everything
	st, _, _ := postRaw(t, ts.URL, &OptimizeRequest{Source: testSource, Spec: "REDTEST"})
	if st != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503 from a draining leader", st)
	}
}

// TestCoalesceWaiterCancelDoesNotAbort: one waiter canceling its own
// request must not abort the shared run — the remaining callers still
// get their 200. Exercises the refcount: only the LAST waiter leaving
// cancels.
func TestCoalesceWaiterCancelDoesNotAbort(t *testing.T) {
	s, ts := testServer(t, Config{ResultCacheEntries: -1})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]:REDTEST"}
	body, _ := json.Marshal(req)

	// Leader admits the run.
	leaderDone := make(chan int, 1)
	go func() {
		st, _, _ := postRaw(t, ts.URL, req)
		leaderDone <- st
	}()
	time.Sleep(50 * time.Millisecond)

	// A follower joins, then cancels mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	followerDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		followerDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	<-followerDone

	// The leader's run was NOT aborted by the follower's cancellation.
	select {
	case st := <-leaderDone:
		if st != 200 {
			t.Errorf("leader status = %d after follower cancel, want 200", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never answered")
	}
	if got := s.met.coalescedTotal.Load(); got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
}

// TestCoalesceLeaderCancelKeepsFollowers: the run is detached from the
// LEADER's context too — the leader's client disconnecting must not
// kill the run its followers are waiting on.
func TestCoalesceLeaderCancelKeepsFollowers(t *testing.T) {
	_, ts := testServer(t, Config{ResultCacheEntries: -1})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]:REDTEST"}
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	leaderDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		close(leaderDone)
	}()
	time.Sleep(50 * time.Millisecond)

	followerDone := make(chan answerPair, 1)
	go func() {
		st, _, v := postRaw(t, ts.URL, req)
		followerDone <- answerPair{st, v}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel() // leader's client walks away mid-run
	<-leaderDone

	select {
	case a := <-followerDone:
		if a.status != 200 || a.verdict != "coalesced" {
			t.Errorf("follower got status %d verdict %q after leader cancel, want 200 coalesced", a.status, a.verdict)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never answered after leader cancel")
	}
}

type answerPair struct {
	status  int
	verdict string
}

// TestCoalesceAllWaitersLeaveCancelsRun: when every waiter abandons
// the flight, the shared run is canceled instead of burning a worker
// for nobody.
func TestCoalesceAllWaitersLeaveCancelsRun(t *testing.T) {
	s, ts := testServer(t, Config{ResultCacheEntries: -1, Workers: 1})
	req := &OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[5000]:REDTEST"}
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(100 * time.Millisecond) // the run is mid-sleep
	cancel()
	<-done

	// The canceled run unwinds promptly (well before its 5s sleep).
	waitFor(t, "abandoned coalesced run to unwind", func() bool {
		return s.inflight.Load() == 0
	})
}
