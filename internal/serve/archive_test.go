package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// buildArchive frames units in maoar1 framing.
func buildArchive(units []archiveUnit) []byte {
	var buf bytes.Buffer
	for _, u := range units {
		fmt.Fprintf(&buf, "maoar1 %d %d\n%s%s", len(u.name), len(u.source), u.name, u.source)
	}
	return buf.Bytes()
}

// postArchive sends an archive and decodes the full NDJSON stream.
func postArchive(t *testing.T, url string, body []byte, query string) ([]ArchiveRecord, *ArchiveTrailer, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize/archive"+query, "application/x-mao-archive", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	records, trailer := decodeStream(t, resp.Body)
	return records, trailer, resp.StatusCode
}

// decodeStream splits an NDJSON body into unit records and the trailer.
func decodeStream(t *testing.T, r io.Reader) ([]ArchiveRecord, *ArchiveTrailer) {
	t.Helper()
	var records []ArchiveRecord
	var trailer *ArchiveTrailer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done":`)) {
			var tr ArchiveTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatalf("bad trailer line %s: %v", line, err)
			}
			trailer = &tr
			continue
		}
		var rec ArchiveRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad record line %s: %v", line, err)
		}
		records = append(records, rec)
	}
	return records, trailer
}

func TestArchiveBasic(t *testing.T) {
	_, ts := testServer(t, Config{})
	units := []archiveUnit{
		{name: "a.s", source: testSource},
		{name: "b.s", source: testSource},
		{name: "c.s", source: testSource},
	}
	records, trailer, code := postArchive(t, ts.URL, buildArchive(units), "?spec=REDTEST:REDMOV")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	if trailer == nil || !trailer.Done || trailer.Units != 3 || trailer.OK != 3 || trailer.Failed != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
	// Every archive position is answered exactly once, and each unit's
	// assembly is byte-identical to its single-request form.
	_, single, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Name: "a.s", Source: testSource, Spec: "REDTEST:REDMOV",
		Options: OptimizeOptions{NoCache: true},
	})
	seen := map[int]bool{}
	for _, rec := range records {
		if seen[rec.Index] {
			t.Errorf("index %d answered twice", rec.Index)
		}
		seen[rec.Index] = true
		if rec.Status != 200 {
			t.Errorf("unit %d status = %d (%s)", rec.Index, rec.Status, rec.Error)
		}
		if rec.Assembly != single.Assembly {
			t.Errorf("unit %d assembly differs from single-request output", rec.Index)
		}
		// The first unit runs the pipeline (REDTEST removes the
		// redundant test); its siblings carry identical functions, so
		// they may legitimately answer from the shared pipeline memo.
		if rec.Stats["REDTEST"]["removed"] != 1 && rec.Stats["MEMO"]["functions"] != 1 {
			t.Errorf("unit %d stats = %v", rec.Index, rec.Stats)
		}
	}
}

func TestArchiveMalformed(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"empty", nil, 400},
		{"garbage header", []byte("not a header\n"), 400},
		{"bad magic", []byte("maoar9 1 1\nab"), 400},
		{"truncated body", []byte("maoar1 3 100\nabc"), 400},
		{"zero name", []byte("maoar1 0 3\nabc"), 400},
	}
	for _, c := range cases {
		if _, _, code := postArchive(t, ts.URL, c.body, ""); code != c.code {
			t.Errorf("%s: status = %d, want %d", c.name, code, c.code)
		}
	}
	// Over the unit cap.
	var many []archiveUnit
	for i := 0; i < 5; i++ {
		many = append(many, archiveUnit{name: fmt.Sprintf("u%d.s", i), source: testSource})
	}
	_, capped := testServer(t, Config{MaxArchiveUnits: 4})
	if _, _, code := postArchive(t, capped.URL, buildArchive(many), ""); code != 400 {
		t.Errorf("over unit cap: status = %d, want 400", code)
	}
	// A bad spec is rejected before the stream commits.
	if _, _, code := postArchive(t, ts.URL, buildArchive(many[:2]), "?spec=NOSUCHPASS"); code != 400 {
		t.Errorf("bad spec: status = %d, want 400", code)
	}
}

// TestArchiveBadUnitIsPerUnit asserts a unit that fails to parse
// produces a per-unit 422 record without sinking its siblings.
func TestArchiveBadUnitIsPerUnit(t *testing.T) {
	_, ts := testServer(t, Config{})
	units := []archiveUnit{
		{name: "good.s", source: testSource},
		{name: "bad.s", source: "\tthisisnotx86 %zz9, %qq3\n"},
		{name: "also-good.s", source: testSource},
	}
	records, trailer, code := postArchive(t, ts.URL, buildArchive(units), "?spec=REDTEST")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	byIndex := map[int]ArchiveRecord{}
	for _, r := range records {
		byIndex[r.Index] = r
	}
	if byIndex[0].Status != 200 || byIndex[2].Status != 200 {
		t.Errorf("good units: %+v / %+v", byIndex[0], byIndex[2])
	}
	if byIndex[1].Status != 422 || byIndex[1].Error == "" {
		t.Errorf("bad unit: %+v", byIndex[1])
	}
	if trailer.OK != 2 || trailer.Failed != 1 {
		t.Errorf("trailer = %+v", trailer)
	}
}

// TestArchiveStreamsIncrementally proves incremental delivery: the
// first NDJSON record is observed while later units are still queued
// or executing — the client of a build-tree archive gets early
// results, not a buffered dump after the last unit.
func TestArchiveStreamsIncrementally(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, BatchMax: 1, BatchWindow: time.Millisecond})
	units := []archiveUnit{
		{name: "u0.s", source: testSource},
		{name: "u1.s", source: testSource},
		{name: "u2.s", source: testSource},
	}
	resp, err := http.Post(ts.URL+"/v1/optimize/archive?spec=SLEEPTEST=ms[250]",
		"application/x-mao-archive", bytes.NewReader(buildArchive(units)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream ended before the first record")
	}
	var first ArchiveRecord
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if first.Status != 200 {
		t.Fatalf("first record = %+v", first)
	}
	// The pipeline is still busy with the rest of the archive.
	if pending := s.queued.Load() + s.inflight.Load(); pending == 0 {
		t.Error("first record only observable after the whole archive finished")
	}
	var rest int
	for sc.Scan() {
		rest++
	}
	if rest != 3 { // two more records + trailer
		t.Errorf("remaining lines = %d, want 3", rest)
	}
}

// TestArchiveCancellationAbortsRemaining proves mid-stream
// cancellation cleans up: the remaining units abort via the shared
// RunContext plumbing and the pipeline drains to idle.
func TestArchiveCancellationAbortsRemaining(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, BatchMax: 1, BatchWindow: time.Millisecond})
	var units []archiveUnit
	for i := 0; i < 6; i++ {
		units = append(units, archiveUnit{name: fmt.Sprintf("u%d.s", i), source: testSource})
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST",
		ts.URL+"/v1/optimize/archive?spec=SLEEPTEST=ms[200]",
		bytes.NewReader(buildArchive(units)))
	req.Header.Set("Content-Type", "application/x-mao-archive")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first record: %v", err)
	}
	cancel()
	resp.Body.Close()
	// All server-side work unwinds: nothing left queued or running.
	waitFor(t, "pipeline to drain after cancel", func() bool {
		return s.queued.Load() == 0 && s.inflight.Load() == 0
	})
}

// TestArchiveDrainFinishesStream is the drain-while-streaming
// guarantee: Close during an in-flight NDJSON stream lets admitted
// units finish, aborts the rest with per-unit records, terminates the
// stream with a trailer — and never deadlocks.
func TestArchiveDrainFinishesStream(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers: 1, QueueDepth: 2, BatchMax: 1, BatchWindow: time.Millisecond,
	})
	var units []archiveUnit
	for i := 0; i < 8; i++ {
		units = append(units, archiveUnit{name: fmt.Sprintf("u%d.s", i), source: testSource})
	}
	resp, err := http.Post(ts.URL+"/v1/optimize/archive?spec=SLEEPTEST=ms[150]",
		"application/x-mao-archive", bytes.NewReader(buildArchive(units)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	firstLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first record: %v", err)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	// The stream must terminate: every unit answered, trailer present.
	records, trailer := decodeStream(t, io.MultiReader(strings.NewReader(firstLine), br))
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against the in-flight archive stream")
	}
	if len(records) != len(units) {
		t.Fatalf("records = %d, want %d (stream truncated by drain)", len(records), len(units))
	}
	if trailer == nil || !trailer.Done {
		t.Fatal("stream ended without a trailer")
	}
	if trailer.OK == 0 {
		t.Error("no admitted unit finished during drain")
	}
	if trailer.Aborted == 0 {
		t.Error("drain aborted no units — Close raced past the stream entirely?")
	}
	if trailer.OK+trailer.Failed+trailer.Aborted != len(units) {
		t.Errorf("trailer accounting off: %+v", trailer)
	}
	if !strings.Contains(trailer.Error, "draining") {
		t.Errorf("trailer error = %q, want a draining mention", trailer.Error)
	}
}

// TestArchiveSharesResultCache: archive units and single requests are
// the same content address, so a repeated archive is all cache hits.
func TestArchiveSharesResultCache(t *testing.T) {
	_, ts := testServer(t, Config{})
	units := []archiveUnit{
		{name: "a.s", source: testSource},
		{name: "b.s", source: testSource},
	}
	first, _, _ := postArchive(t, ts.URL, buildArchive(units), "?spec=REDTEST")
	for _, rec := range first {
		if rec.Cached {
			t.Errorf("cold archive unit %d claims cached", rec.Index)
		}
	}
	second, trailer, _ := postArchive(t, ts.URL, buildArchive(units), "?spec=REDTEST")
	for _, rec := range second {
		if !rec.Cached {
			t.Errorf("warm archive unit %d missed the cache", rec.Index)
		}
	}
	if trailer.OK != 2 {
		t.Errorf("trailer = %+v", trailer)
	}
	// The single-request path hits entries the archive populated.
	code, single, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Name: "a.s", Source: testSource, Spec: "REDTEST",
	})
	if code != 200 || !single.Cached {
		t.Errorf("single request after archive: code=%d cached=%v", code, single.Cached)
	}
}

// TestCacheDispositionHeader pins the X-Mao-Cache header the load
// generator and router tests read.
func TestCacheDispositionHeader(t *testing.T) {
	_, ts := testServer(t, Config{})
	body, _ := json.Marshal(&OptimizeRequest{Source: testSource, Spec: "REDTEST"})
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Mao-Cache"); got != want {
			t.Errorf("request %d: X-Mao-Cache = %q, want %q", i, got, want)
		}
	}
}
