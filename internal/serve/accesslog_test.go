package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// lastLogLine parses the final access-log line written so far.
// (syncBuffer is serve_test.go's mutex-guarded log sink.)
func lastLogLine(t *testing.T, log *syncBuffer) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimRight(log.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	var rec map[string]any
	if err := json.Unmarshal([]byte(last), &rec); err != nil {
		t.Fatalf("access log line is not valid JSON: %q: %v", last, err)
	}
	return rec
}

// TestAccessLogFieldSet: every completed request writes one JSON line
// carrying the full field set.
func TestAccessLogFieldSet(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{Workers: 1, AccessLog: log})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	rec := lastLogLine(t, log)
	for _, field := range []string{"time", "method", "path", "status", "dur_ms", "bytes", "remote", "request_id"} {
		if _, ok := rec[field]; !ok {
			t.Errorf("access log missing field %q: %v", field, rec)
		}
	}
	if rec["method"] != "GET" || rec["path"] != "/healthz" || rec["status"] != float64(200) {
		t.Errorf("access log fields wrong: %v", rec)
	}
	if rec["bytes"].(float64) <= 0 {
		t.Errorf("bytes not recorded: %v", rec)
	}
}

// TestAccessLogEscaping: attacker-shaped paths (quotes, backslashes,
// control bytes) stay inside their JSON string — one parseable line,
// exact round-trip of the path.
func TestAccessLogEscaping(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{Workers: 1, AccessLog: log})

	hostile := `/healthz/x%22%2C%22status%22%3A0%5C%7B` // decodes to /healthz/x","status":0\{
	req, err := http.NewRequest("GET", ts.URL+hostile, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	rec := lastLogLine(t, log)
	if want := `/healthz/x","status":0\{`; rec["path"] != want {
		t.Errorf("path round-trip: got %q, want %q", rec["path"], want)
	}
	if rec["status"] != float64(404) {
		t.Errorf("status overwritten by injected field: %v", rec)
	}
}

// TestAccessLogTraceIDPropagation: an inbound X-Request-ID is logged
// and echoed on the response; a request without one gets a generated
// ID, consistent between log and response header.
func TestAccessLogTraceIDPropagation(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{Workers: 1, AccessLog: log})

	// Inbound ID: propagated verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-abc-123" {
		t.Errorf("response header: got %q, want inbound ID echoed", got)
	}
	if rec := lastLogLine(t, log); rec["request_id"] != "trace-abc-123" {
		t.Errorf("log request_id: got %v, want trace-abc-123", rec["request_id"])
	}

	// No inbound ID: one is generated, identical in header and log.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Errorf("generated ID %q, want 16 hex digits", gen)
	}
	if rec := lastLogLine(t, log); rec["request_id"] != gen {
		t.Errorf("log request_id %v != response header %q", rec["request_id"], gen)
	}

	// Oversize inbound IDs are replaced, not propagated.
	req3, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req3.Header.Set("X-Request-ID", strings.Repeat("x", 4096))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("oversize inbound ID propagated: %d bytes", len(got))
	}
}
