package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mao/internal/cachekey"
)

// resultKey builds the content address of a request: the SHA-256 of
// the source plus every request field the response depends on. Two
// requests with the same key are guaranteed the same response, so a
// cached answer is exact, not approximate. The derivation itself lives
// in internal/cachekey (golden-vector pinned) because the shard router
// must compute the identical key to concentrate cache hits per shard.
func resultKey(req *OptimizeRequest) string {
	return cachekey.Key(cachekey.Request{
		Name:    req.Name,
		Source:  req.Source,
		Spec:    req.Spec,
		Check:   req.Options.Check,
		Explain: req.Options.Explain,
		Verify:  req.Options.Verify,
	})
}

// resultCache is the content-addressed response cache: an LRU map
// from resultKey to the completed response. Entries are immutable
// once stored (handlers serialize them without copying).
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // of resultEntry, front = most recent
	cap     int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type resultEntry struct {
	key  string
	resp *OptimizeResponse
}

// newResultCache returns a cache holding at most capEntries responses;
// capEntries < 0 disables caching entirely (every get misses, puts are
// dropped).
func newResultCache(capEntries int) *resultCache {
	c := &resultCache{cap: capEntries}
	if capEntries > 0 {
		c.entries = make(map[string]*list.Element)
		c.lru = list.New()
	}
	return c
}

func (c *resultCache) enabled() bool { return c.cap > 0 }

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (*OptimizeResponse, bool) {
	if !c.enabled() || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(e)
	c.hits.Add(1)
	return e.Value.(resultEntry).resp, true
}

// put stores a completed response, evicting the least recently used
// entry beyond the cap.
func (c *resultCache) put(key string, resp *OptimizeResponse) {
	if !c.enabled() || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.Value = resultEntry{key, resp}
		c.lru.MoveToFront(e)
		return
	}
	c.entries[key] = c.lru.PushFront(resultEntry{key, resp})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(resultEntry).key)
		c.lru.Remove(back)
		c.evictions.Add(1)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
