package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mao/internal/check"
	"mao/internal/pass"
	"mao/internal/scope"
	"mao/internal/trace"
	"mao/internal/x86/decode"
)

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	// Name is the unit name used in diagnostics ("request.s" when
	// empty). It appears in Diag.File and in error messages.
	Name string `json:"name,omitempty"`
	// Source is the AT&T-syntax assembly to optimize. Required.
	Source string `json:"source"`
	// Spec is the ':'-separated pass pipeline, e.g. "REDTEST:REDMOV"
	// (mao --mao= syntax). Empty runs no passes: the unit is parsed
	// and re-emitted canonically. The ASM pass and the dump_before /
	// dump_after standard options are rejected — they write files on
	// the server; the service returns assembly in the response.
	Spec string `json:"spec,omitempty"`
	// Options tune this request.
	Options OptimizeOptions `json:"options,omitempty"`
}

// OptimizeOptions are the per-request knobs.
type OptimizeOptions struct {
	// Check runs the static verification catalog over the optimized
	// unit and returns the diagnostics.
	Check bool `json:"check,omitempty"`
	// DeadlineMS overrides the server's default request deadline,
	// capped at the server's maximum. The deadline covers queueing
	// and execution.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoCache bypasses the result cache for this request (the fresh
	// result is still stored).
	NoCache bool `json:"no_cache,omitempty"`
	// Explain returns per-instruction lineage (origin and last-mutator
	// pass of every node) alongside the optimized assembly. Also
	// settable as the explain=1 query parameter.
	Explain bool `json:"explain,omitempty"`
	// Verify translation-validates every pass invocation of the
	// pipeline (see mao/internal/verify): the response carries one
	// verdict per invocation, and any refutation appears in Diags with
	// rule verify-equiv. Also settable as the verify=1 query parameter.
	Verify bool `json:"verify,omitempty"`
	// Trace returns the request's distributed span tree: "spans"
	// (?trace=1) attaches the stitched cross-process spans, "chrome"
	// (?trace=chrome) additionally renders Chrome trace events. Trace
	// requests bypass the result-cache lookup — spans describe one
	// execution, not the content-addressed result — but the trace-free
	// result is still cached. Deliberately not part of the cache key.
	Trace string `json:"trace,omitempty"`
}

// VerifyVerdict is one pass invocation's translation-validation
// outcome, present when options.verify was set.
type VerifyVerdict struct {
	Pass  string `json:"pass"`
	Index int    `json:"index"`
	// Statuses counts the per-function outcomes: proved, concrete,
	// refuted, inconclusive.
	Statuses map[string]int `json:"statuses"`
	// Refuted names the functions proven not observationally
	// equivalent (empty = the invocation validated clean).
	Refuted []string `json:"refuted,omitempty"`
	// DurMS is the verification wall time for this invocation.
	DurMS float64 `json:"dur_ms"`
}

func (r *OptimizeRequest) unitName() string {
	if r.Name == "" {
		return "request.s"
	}
	return r.Name
}

// OptimizeResponse is the body of a successful optimization.
type OptimizeResponse struct {
	// Assembly is the optimized unit, byte-identical to what cmd/mao
	// emits for the same source and spec.
	Assembly string `json:"assembly"`
	// Stats are the per-pass transformation counters (pass → key →
	// count), including the RELAXCACHE pseudo-pass.
	Stats map[string]map[string]int `json:"stats,omitempty"`
	// Diags carries the static-checker diagnostics when
	// options.check was set (empty slice = checked, clean).
	Diags []check.Diag `json:"diags,omitempty"`
	// Cached reports that the response was served from the result
	// cache without running a pipeline.
	Cached bool `json:"cached"`
	// BatchSize is how many same-spec requests shared this request's
	// batch (1 = alone; 0 on cached responses).
	BatchSize int `json:"batch_size,omitempty"`
	// Lineage is the per-instruction provenance of the optimized unit,
	// present when options.explain (or ?explain=1) was set.
	Lineage []trace.InstLineage `json:"lineage,omitempty"`
	// Verify carries one translation-validation verdict per pass
	// invocation, in pipeline order, when options.verify (or
	// ?verify=1) was set. Refutations additionally surface in Diags.
	Verify []VerifyVerdict `json:"verify,omitempty"`
	// Trace is the stitched distributed span tree of this execution
	// (queue → batch → pipeline → invocation → function → verify,
	// parented under the inbound X-Mao-Trace context), present when
	// options.trace (or ?trace=1) was set. Span IDs are derived
	// deterministically, so the tree is byte-identical at any worker
	// count modulo recorded wall times.
	Trace []scope.Span `json:"trace,omitempty"`
	// TraceChrome is the same tree as Chrome trace events
	// (?trace=chrome), loadable in chrome://tracing and Perfetto.
	TraceChrome []scope.ChromeEvent `json:"trace_chrome,omitempty"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler:
//
//	POST /v1/optimize          optimize one unit
//	POST /v1/optimize/archive  optimize a multi-unit archive, streaming
//	                           one NDJSON record per unit as it finishes
//	GET  /metrics              Prometheus text-format metrics
//	GET  /healthz              liveness (200 while the process runs)
//	GET  /readyz               readiness (503 once draining)
//
// Every request is access-logged (Config.AccessLog) and measured into
// the request metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/optimize/archive", s.handleArchive)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return s.instrument(mux)
}

// cacheHeader reports result-cache disposition on every /v1/optimize
// answer; load generators read it to measure fleet-wide hit rates.
const cacheHeader = "X-Mao-Cache"

// handleOptimize is POST /v1/optimize: check the client's quota,
// validate, consult the result cache, admit into the queue, and wait
// for the worker's answer (or the request deadline).
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	// The per-client quota gates everything, including cache hits: it
	// is a request-rate bound, and a 429 here consumes no global queue
	// slot — tenant isolation sits UNDER the shared admission control.
	fi := flightFrom(r.Context())
	if ok, retryAfter := s.quota.take(clientID(r)); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeFlightError(w, fi, http.StatusTooManyRequests, errors.New("client quota exhausted"))
		return
	}
	req, status, err := s.decodeRequest(w, r)
	if err != nil {
		writeFlightError(w, fi, status, err)
		return
	}

	key := resultKey(req)
	// Trace requests bypass the cache lookup: spans describe one
	// execution, and a cached answer has none to offer. The fresh
	// (trace-free) result is still stored, so tracing never degrades
	// the cache for other callers.
	if !req.Options.NoCache && req.Options.Trace == "" {
		if resp, ok := s.results.get(key); ok {
			cached := *resp
			cached.Cached = true
			cached.BatchSize = 0
			w.Header().Set(cacheHeader, "hit")
			if fi != nil {
				fi.cache = "hit"
			}
			writeJSON(w, http.StatusOK, &cached)
			return
		}
	}
	// In-flight miss coalescing: identical misses share one pipeline
	// run. Followers consume no queue slot and answer the moment the
	// leader's run lands; no_cache and ?trace requests never coalesce
	// (the first asked for a fresh run, the second needs its own span
	// tree).
	var f *flight
	leader := true
	if s.flights != nil && !req.Options.NoCache && req.Options.Trace == "" {
		f, leader = s.flights.join(key)
	}
	verdict := "miss"
	if !leader {
		verdict = "coalesced"
		s.met.coalescedTotal.Add(1)
	}
	w.Header().Set(cacheHeader, verdict)
	if fi != nil {
		fi.cache = verdict
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req))
	defer cancel()

	if f == nil {
		// Uncoalescible: this request owns its run, start to finish.
		col := trace.NewCollector()
		col.TraceID = requestIDFrom(ctx)
		j := &job{req: req, key: key, ctx: ctx, done: make(chan jobResult, 1),
			col: col, admitted: col.Now()}
		if ok, retryAfter := s.admit(j); !ok {
			if retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				writeFlightError(w, fi, http.StatusTooManyRequests, errors.New("optimization queue is full"))
			} else {
				writeFlightError(w, fi, http.StatusServiceUnavailable, errors.New("server is draining"))
			}
			return
		}

		select {
		case res := <-j.done:
			if fi != nil {
				fi.queueNS = res.queueNS
				fi.spans = res.spans
			}
			if res.err != nil {
				writeFlightError(w, fi, res.status, res.err)
				return
			}
			resp := res.resp
			if mode := req.Options.Trace; mode != "" {
				resp = traceResponse(resp, res.spans, scopeContextFrom(r.Context()), key, mode)
			}
			writeJSON(w, http.StatusOK, resp)
		case <-ctx.Done():
			// Deadline expired (or client went away) while the job was
			// still queued or running; the worker will observe the same
			// context and discard the job.
			writeFlightError(w, fi, statusForCtx(ctx.Err()), fmt.Errorf("request abandoned: %w", ctx.Err()))
		}
		return
	}

	if leader {
		// The shared run is detached from this request's context —
		// followers may outlive this handler — but bounded by the same
		// deadline; the last waiter to leave cancels it. WithoutCancel
		// keeps the request-ID/trace values for the spans.
		runCtx, runCancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.deadlineFor(req))
		f.setCancel(runCancel)
		col := trace.NewCollector()
		col.TraceID = requestIDFrom(runCtx)
		j := &job{req: req, key: key, ctx: runCtx, done: make(chan jobResult, 1),
			col: col, admitted: col.Now()}
		if ok, retryAfter := s.admit(j); !ok {
			// The leader publishes on every path — a refusal becomes the
			// shared result, so no waiter ever hangs on a run that never
			// started.
			if retryAfter > 0 {
				f.publish(jobResult{status: http.StatusTooManyRequests, err: errors.New("optimization queue is full")})
			} else {
				f.publish(jobResult{status: http.StatusServiceUnavailable, err: errors.New("server is draining")})
			}
		} else {
			// The driver outlives this handler. Close drains every
			// admitted job — j.done always receives exactly once — so
			// every waiter gets a result or a clean error even when the
			// server shuts down mid-flight.
			go func() { f.publish(<-j.done) }()
		}
	}

	select {
	case <-f.done:
		res := f.res
		if fi != nil {
			fi.queueNS = res.queueNS
			fi.spans = res.spans
		}
		if res.err != nil {
			if res.status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeFlightError(w, fi, res.status, res.err)
			return
		}
		writeJSON(w, http.StatusOK, res.resp)
	case <-ctx.Done():
		f.leave()
		writeFlightError(w, fi, statusForCtx(ctx.Err()), fmt.Errorf("request abandoned: %w", ctx.Err()))
	}
}

// writeFlightError reports err on the wire and into the request's
// flight carrier, so errored requests land in the recorder's error
// reservoir with their reason.
func writeFlightError(w http.ResponseWriter, fi *flightInfo, status int, err error) {
	if fi != nil {
		fi.errMsg = err.Error()
	}
	writeError(w, status, err)
}

// decodeRequest reads, parses and validates the request body. The
// returned status classifies the failure (413 oversize, 422 a binary
// body that does not decode, 400 anything else malformed). A body of
// Content-Type application/octet-stream is raw x86-64 machine code:
// it is decoded and lifted to assembly here, so the rest of the
// service — including the result-cache key — operates on the decoded
// form.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*OptimizeRequest, int, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/octet-stream") {
		return s.decodeBinaryRequest(w, r)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req OptimizeRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err)
	}
	if req.Source == "" {
		return nil, http.StatusBadRequest, errors.New("source is required")
	}
	if status, err := s.validateRequest(r, &req); err != nil {
		return nil, status, err
	}
	return &req, 0, nil
}

// decodeBinaryRequest handles the octet-stream form of /v1/optimize:
// the body is a raw .text blob, the request knobs ride in query
// parameters (name, spec, base, check, explain, verify, no_cache,
// deadline_ms). The blob is decoded and lifted immediately; the
// resulting assembly becomes the request Source, so binary requests
// share the JSON path's pipeline, batching and result cache — two
// blobs that decode to the same unit under the same spec share a
// cache entry.
func (s *Server) decodeBinaryRequest(w http.ResponseWriter, r *http.Request) (*OptimizeRequest, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
	}
	if len(raw) == 0 {
		return nil, http.StatusBadRequest, errors.New("machine-code body is required")
	}
	q := r.URL.Query()
	req := OptimizeRequest{Name: q.Get("name"), Spec: q.Get("spec")}
	if req.Name == "" {
		req.Name = "request.bin"
	}
	var base int64
	if v := q.Get("base"); v != "" {
		if base, err = strconv.ParseInt(v, 0, 64); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("invalid base %q", v)
		}
	}
	u, err := decode.ToUnit(raw, decode.UnitOptions{FileName: req.Name, Base: base})
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	req.Source = u.String()
	for _, p := range []struct {
		name string
		dst  *bool
	}{{"check", &req.Options.Check}, {"no_cache", &req.Options.NoCache}} {
		if v := q.Get(p.name); v == "1" || v == "true" {
			*p.dst = true
		}
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("invalid deadline_ms %q", v)
		}
		req.Options.DeadlineMS = ms
	}
	if status, err := s.validateRequest(r, &req); err != nil {
		return nil, status, err
	}
	return &req, 0, nil
}

// validateRequest applies the path-independent request checks: the
// pipeline spec, the deadline, and the query-parameter spellings of
// the explain/verify options.
func (s *Server) validateRequest(r *http.Request, req *OptimizeRequest) (int, error) {
	invs, err := pass.ParsePipeline(req.Spec)
	if err != nil {
		return http.StatusBadRequest, err
	}
	for _, inv := range invs {
		if inv.Pass.Name() == "ASM" {
			return http.StatusBadRequest,
				errors.New("the ASM pass is CLI-only: the service returns assembly in the response body")
		}
		for _, opt := range []string{"dump_before", "dump_after"} {
			if inv.Opts.String(opt, "\x00") != "\x00" {
				return http.StatusBadRequest,
					fmt.Errorf("the %s option is CLI-only (it writes files on the server)", opt)
			}
		}
	}
	if req.Options.DeadlineMS < 0 {
		return http.StatusBadRequest, errors.New("deadline_ms must be >= 0")
	}
	// ?explain=1, ?verify=1 and ?trace=1|chrome are the curl-friendly
	// spellings of the corresponding body options.
	if v := r.URL.Query().Get("explain"); v == "1" || v == "true" {
		req.Options.Explain = true
	}
	if v := r.URL.Query().Get("verify"); v == "1" || v == "true" {
		req.Options.Verify = true
	}
	if v := r.URL.Query().Get("trace"); v != "" {
		mode, ok := parseTraceMode(v)
		if !ok {
			return http.StatusBadRequest, fmt.Errorf("invalid trace mode %q (want 1 or chrome)", v)
		}
		req.Options.Trace = mode
	}
	switch req.Options.Trace {
	case "", scope.TraceSpans, scope.TraceChrome:
	default:
		return http.StatusBadRequest,
			fmt.Errorf("invalid options.trace %q (want %q or %q)", req.Options.Trace, scope.TraceSpans, scope.TraceChrome)
	}
	return 0, nil
}

// deadlineFor resolves the effective deadline of a request.
func (s *Server) deadlineFor(req *OptimizeRequest) time.Duration {
	d := s.cfg.DefaultDeadline
	if req.Options.DeadlineMS > 0 {
		d = time.Duration(req.Options.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // the status is already committed; encode errors only surface as a truncated body
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
