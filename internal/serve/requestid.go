package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// requestIDHeader is the header MAOD reads an inbound trace ID from
// and echoes the effective ID back on. Callers that already operate a
// tracing scheme pass their ID through; everyone else gets a fresh one,
// so every access-log line and span is correlatable either way.
const requestIDHeader = "X-Request-ID"

// ridKey is the context key the effective request ID travels under —
// from the instrument middleware, through the handler and job context,
// into the worker that stamps it on the request's spans.
type ridKey struct{}

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef" // rand.Read failing means larger problems
	}
	return hex.EncodeToString(b[:])
}

// withRequestID resolves the request's trace ID (inbound header or
// fresh), stores it in the request context and echoes it on the
// response. Inbound IDs are length-capped: the ID is reflected into
// logs, metrics-adjacent structures and the response header, and an
// unbounded attacker-controlled value has no business in any of them.
func withRequestID(r *http.Request) (*http.Request, string) {
	id := r.Header.Get(requestIDHeader)
	if id == "" || len(id) > 128 {
		id = newRequestID()
	}
	return r.WithContext(context.WithValue(r.Context(), ridKey{}, id)), id
}

// requestIDFrom returns the request ID carried by ctx ("" when the
// request did not pass through the instrument middleware).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}
