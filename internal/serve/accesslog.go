package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"mao/internal/scope"
)

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the wrapped writer to http.NewResponseController, so
// the archive stream's per-record Flush reaches the real connection
// through the instrumentation layer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"dur_ms"`
	Bytes      int64   `json:"bytes"`
	Remote     string  `json:"remote"`
	RequestID  string  `json:"request_id"`
	// TraceID is the distributed-trace ID (X-Mao-Trace), correlating
	// the log line with the fleet-wide span tree; Cache is the
	// result-cache verdict on /v1/* requests.
	TraceID string `json:"trace_id,omitempty"`
	Cache   string `json:"cache,omitempty"`
}

// instrument wraps the service mux with request-ID and trace-context
// propagation, request metrics, flight recording and, when configured,
// structured JSON access logging. The effective request ID (inbound
// X-Request-ID or freshly generated) is echoed on the response,
// logged, and available to handlers via requestIDFrom, which carries
// it into the spans of the request's pipeline run; the trace context
// (inbound X-Mao-Trace or freshly originated) travels the same way via
// scopeContextFrom.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r, rid := withRequestID(r)
		w.Header().Set(requestIDHeader, rid)
		r, tc := withScopeContext(r)
		w.Header().Set(scope.TraceHeader, tc.Header())
		var fi *flightInfo
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			r, fi = withFlightInfo(r)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		s.met.observeRequest(sw.status, d)
		if fi != nil {
			s.recordFlight(r, sw.status, d.Nanoseconds(), start.Add(d).UnixNano(), fi)
		}
		if s.cfg.AccessLog != nil {
			rec := accessRecord{
				Time:       start.UTC().Format(time.RFC3339Nano),
				Method:     r.Method,
				Path:       r.URL.Path,
				Status:     sw.status,
				DurationMS: float64(d.Microseconds()) / 1000,
				Bytes:      sw.bytes,
				Remote:     r.RemoteAddr,
				RequestID:  rid,
				TraceID:    tc.TraceID,
			}
			if fi != nil {
				rec.Cache = fi.cache
			}
			line, err := json.Marshal(rec)
			if err == nil {
				line = append(line, '\n')
				s.cfg.AccessLog.Write(line)
			}
		}
	})
}
