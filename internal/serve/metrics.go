package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mao/internal/pass"
	"mao/internal/scope"
	"mao/internal/trace"
)

// metrics is the hand-rolled observability plane: atomic counters and
// a fixed-bucket latency histogram, rendered in Prometheus text
// exposition format on /metrics. No third-party client library — the
// format is a few lines of text, and the daemon stays stdlib-only.
type metrics struct {
	requestsByCode sync.Map // int (status code) → *atomic.Int64
	latency        histogram

	// queueWait is the admission-to-pickup wait, split out from the
	// request latency so queueing pressure is visible separately from
	// service time (one observation per executed job; cache hits never
	// queue and are absent).
	queueWait histogram

	// passLatency histograms per pass name, fed by the invocation
	// spans of every request's pipeline run.
	passLatency sync.Map // string (pass name) → *histogram

	// verifyLatency is the translation-validation wall time per pass
	// invocation (requests with options.verify), fed by KindVerify
	// spans; verifyRefutations counts refuted invocations daemon-wide.
	verifyLatency     histogram
	verifyRefutations atomic.Int64

	queueRejects   atomic.Int64
	batchesTotal   atomic.Int64
	batchJobsTotal atomic.Int64
	// coalescedTotal counts requests (and archive units) that joined
	// another request's in-flight run instead of admitting their own.
	coalescedTotal atomic.Int64

	passMu    sync.Mutex
	passStats *pass.Stats // aggregated across all completed requests
}

func newMetrics() *metrics {
	return &metrics{
		latency:       newHistogram(latencyBuckets),
		queueWait:     newHistogram(latencyBuckets),
		verifyLatency: newHistogram(passLatencyBuckets),
		passStats:     pass.NewStats(),
	}
}

// latencyBuckets spans queueing plus pipeline execution: corpus-size
// units optimize in single-digit milliseconds, a saturated queue adds
// tens to hundreds more.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func (m *metrics) observeRequest(code int, d time.Duration) {
	v, ok := m.requestsByCode.Load(code)
	if !ok {
		v, _ = m.requestsByCode.LoadOrStore(code, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
	m.latency.observe(d.Seconds())
}

// passLatencyBuckets span single-pass wall times: peepholes run in
// tens of microseconds, relaxing alignment passes in milliseconds.
var passLatencyBuckets = []float64{
	.000025, .0001, .00025, .001, .0025, .01, .025, .1, .25, 1,
}

// observePassSpans folds a request's span stream into the per-pass
// latency histograms (one observation per pass invocation).
func (m *metrics) observePassSpans(spans []trace.Span) {
	for _, sp := range spans {
		if sp.Kind == trace.KindVerify {
			m.verifyLatency.observe(sp.Dur.Seconds())
			continue
		}
		if sp.Kind != trace.KindInvocation {
			continue
		}
		v, ok := m.passLatency.Load(sp.Ref.Pass)
		if !ok {
			h := newHistogram(passLatencyBuckets)
			v, _ = m.passLatency.LoadOrStore(sp.Ref.Pass, &h)
		}
		v.(*histogram).observe(sp.Dur.Seconds())
	}
}

func (m *metrics) mergePassStats(s *pass.Stats) {
	m.passMu.Lock()
	defer m.passMu.Unlock()
	m.passStats.Merge(s)
}

// histogram is a cumulative fixed-bucket histogram in the Prometheus
// sense: counts[i] counts observations ≤ buckets[i]; sum carries the
// total in float64 bits for atomic access.
type histogram struct {
	buckets []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) histogram {
	return histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// handleMetrics renders GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	writeMetric := func(help, typ, name string, pairs ...string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i := 0; i+1 < len(pairs); i += 2 {
			fmt.Fprintf(w, "%s%s %s\n", name, pairs[i], pairs[i+1])
		}
	}
	m := s.met

	// Request counters by status code, deterministically ordered.
	var codes []int
	m.requestsByCode.Range(func(k, _ any) bool { codes = append(codes, k.(int)); return true })
	sort.Ints(codes)
	var reqPairs []string
	for _, c := range codes {
		v, _ := m.requestsByCode.Load(c)
		reqPairs = append(reqPairs,
			fmt.Sprintf(`{code="%d"}`, c),
			strconv.FormatInt(v.(*atomic.Int64).Load(), 10))
	}
	writeMetric("HTTP requests completed, by status code.", "counter",
		"maod_requests_total", reqPairs...)

	// Latency histogram.
	fmt.Fprintf(w, "# HELP maod_request_duration_seconds HTTP request latency (all endpoints).\n")
	fmt.Fprintf(w, "# TYPE maod_request_duration_seconds histogram\n")
	cum := int64(0)
	for i, ub := range m.latency.buckets {
		cum += m.latency.counts[i].Load()
		fmt.Fprintf(w, "maod_request_duration_seconds_bucket{le=\"%s\"} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	total := m.latency.count.Load()
	fmt.Fprintf(w, "maod_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "maod_request_duration_seconds_sum %g\n",
		math.Float64frombits(m.latency.sumBits.Load()))
	fmt.Fprintf(w, "maod_request_duration_seconds_count %d\n", total)

	// Queue wait, split from service time (MAOSCOPE): how long
	// admitted requests sat before a worker picked them up.
	fmt.Fprintf(w, "# HELP maod_queue_wait_seconds Admission-to-pickup wait of executed requests.\n")
	fmt.Fprintf(w, "# TYPE maod_queue_wait_seconds histogram\n")
	qcum := int64(0)
	for i, ub := range m.queueWait.buckets {
		qcum += m.queueWait.counts[i].Load()
		fmt.Fprintf(w, "maod_queue_wait_seconds_bucket{le=\"%s\"} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), qcum)
	}
	qtotal := m.queueWait.count.Load()
	fmt.Fprintf(w, "maod_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", qtotal)
	fmt.Fprintf(w, "maod_queue_wait_seconds_sum %g\n",
		math.Float64frombits(m.queueWait.sumBits.Load()))
	fmt.Fprintf(w, "maod_queue_wait_seconds_count %d\n", qtotal)

	// Per-pass latency histograms, one series set per pass name,
	// deterministically ordered.
	var passNames []string
	m.passLatency.Range(func(k, _ any) bool { passNames = append(passNames, k.(string)); return true })
	sort.Strings(passNames)
	fmt.Fprintf(w, "# HELP maod_pass_duration_seconds Wall time of one pass invocation, by pass (from pipeline spans).\n")
	fmt.Fprintf(w, "# TYPE maod_pass_duration_seconds histogram\n")
	for _, name := range passNames {
		v, _ := m.passLatency.Load(name)
		h := v.(*histogram)
		cum := int64(0)
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "maod_pass_duration_seconds_bucket{pass=%q,le=\"%s\"} %d\n",
				name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		n := h.count.Load()
		fmt.Fprintf(w, "maod_pass_duration_seconds_bucket{pass=%q,le=\"+Inf\"} %d\n", name, n)
		fmt.Fprintf(w, "maod_pass_duration_seconds_sum{pass=%q} %g\n",
			name, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "maod_pass_duration_seconds_count{pass=%q} %d\n", name, n)
	}

	// Translation-validation latency (requests with options.verify;
	// one observation per validated pass invocation) and refutations.
	fmt.Fprintf(w, "# HELP maod_verify_duration_seconds Translation-validation wall time per pass invocation (options.verify).\n")
	fmt.Fprintf(w, "# TYPE maod_verify_duration_seconds histogram\n")
	vcum := int64(0)
	for i, ub := range m.verifyLatency.buckets {
		vcum += m.verifyLatency.counts[i].Load()
		fmt.Fprintf(w, "maod_verify_duration_seconds_bucket{le=\"%s\"} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), vcum)
	}
	vtotal := m.verifyLatency.count.Load()
	fmt.Fprintf(w, "maod_verify_duration_seconds_bucket{le=\"+Inf\"} %d\n", vtotal)
	fmt.Fprintf(w, "maod_verify_duration_seconds_sum %g\n",
		math.Float64frombits(m.verifyLatency.sumBits.Load()))
	fmt.Fprintf(w, "maod_verify_duration_seconds_count %d\n", vtotal)
	writeMetric("Pass invocations refuted by the translation validator.", "counter",
		"maod_verify_refutations_total", "", strconv.FormatInt(m.verifyRefutations.Load(), 10))

	// Queue and worker-pool state.
	writeMetric("Requests admitted and waiting for a worker.", "gauge",
		"maod_queue_depth", "", strconv.FormatInt(s.queued.Load(), 10))
	writeMetric("Requests currently executing.", "gauge",
		"maod_inflight", "", strconv.FormatInt(s.inflight.Load(), 10))
	writeMetric("Requests rejected by admission control (429).", "counter",
		"maod_queue_rejects_total", "", strconv.FormatInt(m.queueRejects.Load(), 10))
	writeMetric("Batches dispatched to the worker pool.", "counter",
		"maod_batches_total", "", strconv.FormatInt(m.batchesTotal.Load(), 10))
	writeMetric("Jobs carried by dispatched batches (sum; divide by maod_batches_total for the mean batch size).", "counter",
		"maod_batch_jobs_total", "", strconv.FormatInt(m.batchJobsTotal.Load(), 10))

	// Result cache.
	writeMetric("Result-cache lookups served from cache.", "counter",
		"maod_result_cache_hits_total", "", strconv.FormatInt(s.results.hits.Load(), 10))
	writeMetric("Result-cache lookups that missed.", "counter",
		"maod_result_cache_misses_total", "", strconv.FormatInt(s.results.misses.Load(), 10))
	writeMetric("Result-cache entries evicted by the LRU cap.", "counter",
		"maod_result_cache_evictions_total", "", strconv.FormatInt(s.results.evictions.Load(), 10))
	writeMetric("Result-cache resident entries.", "gauge",
		"maod_result_cache_entries", "", strconv.Itoa(s.results.len()))

	// Pipeline memo (MAOMEMO): function-granular memoized pipeline
	// results shared across all requests.
	if s.memo != nil {
		mm := s.memo.Metrics()
		writeMetric("Pipeline-memo function probes answered from the memo.", "counter",
			"maod_memo_hits_total", "", strconv.FormatUint(mm.Hits, 10))
		writeMetric("Pipeline-memo function probes that missed.", "counter",
			"maod_memo_misses_total", "", strconv.FormatUint(mm.Misses, 10))
		writeMetric("Pipeline-memo entries stored.", "counter",
			"maod_memo_stores_total", "", strconv.FormatUint(mm.Stores, 10))
		writeMetric("Pipeline-memo entries evicted by the LRU bound.", "counter",
			"maod_memo_evictions_total", "", strconv.FormatUint(mm.Evictions, 10))
		writeMetric("Pipeline-memo resident entries.", "gauge",
			"maod_memo_entries", "", strconv.Itoa(mm.Entries))
	}
	writeMetric("Requests coalesced onto another request's in-flight identical run.", "counter",
		"maod_coalesced_total", "", strconv.FormatInt(m.coalescedTotal.Load(), 10))

	// Relaxation/encoding cache (the RELAXCACHE of pass.Stats),
	// daemon-wide cumulative.
	rh, rm := s.relaxCache.Counters()
	writeMetric("Encoding-cache (RELAXCACHE) hits.", "counter",
		"maod_relaxcache_hits_total", "", strconv.FormatInt(rh, 10))
	writeMetric("Encoding-cache (RELAXCACHE) misses.", "counter",
		"maod_relaxcache_misses_total", "", strconv.FormatInt(rm, 10))
	writeMetric("Encoding-cache entries evicted by the LRU caps.", "counter",
		"maod_relaxcache_evictions_total", "", strconv.FormatInt(s.relaxCache.Evictions(), 10))

	// Aggregated per-pass transformation counters.
	m.passMu.Lock()
	passMap := m.passStats.Map()
	m.passMu.Unlock()
	var passPairs []string
	var names []string
	for p := range passMap {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		var keys []string
		for k := range passMap[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			passPairs = append(passPairs,
				fmt.Sprintf(`{pass="%s",key="%s"}`, p, k),
				strconv.Itoa(passMap[p][k]))
		}
	}
	writeMetric("Per-pass transformation counters, aggregated over all completed requests.",
		"counter", "maod_pass_counters_total", passPairs...)

	// Per-client quotas (present only when Config.QuotaRate > 0).
	if s.quota != nil {
		perClient, clients := s.quota.snapshot()
		var ids []string
		for id := range perClient {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var grantPairs, rejectPairs []string
		for _, id := range ids {
			label := fmt.Sprintf(`{client=%q}`, id)
			grantPairs = append(grantPairs, label, strconv.FormatInt(perClient[id][0], 10))
			rejectPairs = append(rejectPairs, label, strconv.FormatInt(perClient[id][1], 10))
		}
		writeMetric("Requests granted a quota token, by client.", "counter",
			"maod_quota_granted_total", grantPairs...)
		writeMetric("Requests refused by the per-client quota (429), by client.", "counter",
			"maod_quota_rejects_total", rejectPairs...)
		writeMetric("Clients with a resident quota bucket.", "gauge",
			"maod_quota_clients", "", strconv.Itoa(clients))
	}

	writeMetric("Seconds since the server started.", "gauge",
		"maod_uptime_seconds", "", strconv.FormatFloat(time.Since(s.started).Seconds(), 'f', 3, 64))

	// Go runtime health (MAOSCOPE): goroutines, GC pauses, heap in use.
	scope.WriteRuntimeMetrics(w, "maod")
}
