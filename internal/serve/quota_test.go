package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postAs sends one optimize request labeled with a client ID and
// returns the status code and Retry-After header.
func postAs(t *testing.T, url, client string, req *OptimizeRequest) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest("POST", url+"/v1/optimize", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	if client != "" {
		hreq.Header.Set("X-Mao-Client", client)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestQuotaIsolatesClients is the tenant-isolation satellite: a client
// that exhausts its bucket is refused with 429 + Retry-After WITHOUT
// consuming a global queue slot or a global-admission reject, and a
// different client is untouched.
func TestQuotaIsolatesClients(t *testing.T) {
	// Refill is effectively frozen (one token per ~3 hours), so the
	// burst is the whole budget and the test is deterministic.
	s, ts := testServer(t, Config{QuotaRate: 0.0001, QuotaBurst: 2})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST", Options: OptimizeOptions{NoCache: true}}

	for i := 0; i < 2; i++ {
		if code, _ := postAs(t, ts.URL, "tenant-a", req); code != 200 {
			t.Fatalf("tenant-a request %d within burst: status = %d", i, code)
		}
	}
	code, retryAfter := postAs(t, ts.URL, "tenant-a", req)
	if code != 429 {
		t.Fatalf("tenant-a over burst: status = %d, want 429", code)
	}
	if retryAfter == "" {
		t.Error("quota 429 lacks Retry-After")
	}

	// The refusal happened UNDER global admission: no queue slot was
	// held, no global reject counted, and the queue is idle.
	if n := s.met.queueRejects.Load(); n != 0 {
		t.Errorf("global queue rejects = %d after a quota 429, want 0", n)
	}
	if n := s.queued.Load(); n != 0 {
		t.Errorf("queued = %d after a quota 429, want 0", n)
	}
	if n := s.quota.rejectsTotal.Load(); n != 1 {
		t.Errorf("quota rejects = %d, want 1", n)
	}

	// Another tenant's bucket is untouched.
	if code, _ := postAs(t, ts.URL, "tenant-b", req); code != 200 {
		t.Errorf("tenant-b blocked by tenant-a's exhaustion: status = %d", code)
	}
}

// TestQuotaRemoteAddrFallback: unlabeled requests are bucketed by
// origin host, so they rate-limit together.
func TestQuotaRemoteAddrFallback(t *testing.T) {
	_, ts := testServer(t, Config{QuotaRate: 0.0001, QuotaBurst: 1})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST", Options: OptimizeOptions{NoCache: true}}
	if code, _ := postAs(t, ts.URL, "", req); code != 200 {
		t.Fatalf("first unlabeled request: status = %d", code)
	}
	if code, _ := postAs(t, ts.URL, "", req); code != 429 {
		t.Errorf("second unlabeled request from the same host: status = %d, want 429", code)
	}
}

// TestQuotaRefills: tokens accrue at QuotaRate, so a refused client
// recovers after waiting.
func TestQuotaRefills(t *testing.T) {
	_, ts := testServer(t, Config{QuotaRate: 200, QuotaBurst: 1})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST", Options: OptimizeOptions{NoCache: true}}
	if code, _ := postAs(t, ts.URL, "c", req); code != 200 {
		t.Fatalf("first: %d", code)
	}
	// Drain whatever refilled during the first request, then assert
	// refusal and recovery.
	for i := 0; i < 3; i++ {
		postAs(t, ts.URL, "c", req)
	}
	code, _ := postAs(t, ts.URL, "c", req)
	if code != 429 && code != 200 {
		t.Fatalf("unexpected status %d", code)
	}
	time.Sleep(50 * time.Millisecond) // 200/s: ~10 tokens, capped at burst 1
	if code, _ := postAs(t, ts.URL, "c", req); code != 200 {
		t.Errorf("after refill window: status = %d, want 200", code)
	}
}

// TestQuotaMetricsExposed: per-client grant/reject counters appear on
// /metrics with the client label.
func TestQuotaMetricsExposed(t *testing.T) {
	_, ts := testServer(t, Config{QuotaRate: 0.0001, QuotaBurst: 1})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST"}
	postAs(t, ts.URL, "tenant-x", req)
	postAs(t, ts.URL, "tenant-x", req) // 429
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(b)
	for _, want := range []string{
		`maod_quota_granted_total{client="tenant-x"} 1`,
		`maod_quota_rejects_total{client="tenant-x"} 1`,
		"maod_quota_clients 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestQuotaPacesArchives: an archive from an over-quota client is not
// refused mid-stream — its units are paced at the refill rate and all
// complete.
func TestQuotaPacesArchives(t *testing.T) {
	_, ts := testServer(t, Config{QuotaRate: 500, QuotaBurst: 1})
	var units []archiveUnit
	for i := 0; i < 4; i++ {
		units = append(units, archiveUnit{name: fmt.Sprintf("u%d.s", i), source: testSource})
	}
	records, trailer, code := postArchive(t, ts.URL, buildArchive(units), "?spec=REDTEST&no_cache=1")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if trailer == nil || trailer.OK != len(units) {
		t.Fatalf("trailer = %+v, want all %d OK", trailer, len(units))
	}
	for _, rec := range records {
		if rec.Status != 200 {
			t.Errorf("unit %d status = %d (%s)", rec.Index, rec.Status, rec.Error)
		}
	}
}

// TestQuotaDisabledIsFree: the default config has no quota layer — a
// burst of labeled requests is never 429'd by quota (the global queue
// is the only limiter).
func TestQuotaDisabledIsFree(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST"}
	for i := 0; i < 20; i++ {
		if code, _ := postAs(t, ts.URL, "hammer", req); code != 200 {
			t.Fatalf("request %d: status = %d with quotas disabled", i, code)
		}
	}
}
