package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// benchEnv boots an in-process service and returns its URL plus one
// pre-encoded request body per corpus fixture.
func benchEnv(b *testing.B, noCache bool) (string, [][]byte) {
	b.Helper()
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() { ts.Close(); s.Close() })

	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		b.Fatalf("no corpus fixtures: %v", err)
	}
	var bodies [][]byte
	for _, fx := range fixtures {
		src, err := os.ReadFile(fx)
		if err != nil {
			b.Fatal(err)
		}
		body, err := json.Marshal(&OptimizeRequest{
			Name: fx, Source: string(src), Spec: "REDTEST:REDMOV",
			Options: OptimizeOptions{NoCache: noCache},
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return ts.URL, bodies
}

func benchOptimize(b *testing.B, noCache bool) {
	url, bodies := benchEnv(b, noCache)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			var out OptimizeResponse
			json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkServiceOptimize measures end-to-end service throughput with
// every request running a real pipeline (result cache bypassed).
func BenchmarkServiceOptimize(b *testing.B) { benchOptimize(b, true) }

// BenchmarkServiceOptimizeCached measures the result-cache hit path:
// after the first round every request is content-addressed straight to
// a cached response.
func BenchmarkServiceOptimizeCached(b *testing.B) { benchOptimize(b, false) }
