package serve

import (
	"sync"
	"time"
)

// batch is a group of admitted jobs sharing one pass spec, dispatched
// to a worker as a unit.
type batch struct {
	spec  string
	jobs  []*job
	timer *time.Timer
}

// batcher groups incoming jobs by pass spec. The first job of a spec
// opens a batch and arms a window timer; same-spec jobs arriving
// within the window join it. A batch dispatches to the out channel
// when the window elapses or the batch reaches max, whichever comes
// first — so a lone request pays at most the window in added latency,
// and a burst of identical requests dispatches immediately at max.
//
// Only the server's dispatcher calls add (single goroutine); flush is
// called from window-timer goroutines and from closeFlush, and the
// mutex arbitrates between them.
type batcher struct {
	window time.Duration
	max    int
	out    chan<- *batch

	mu      sync.Mutex
	pending map[string]*batch
	sendWG  sync.WaitGroup // in-flight timer sends, awaited by closeFlush
}

func newBatcher(window time.Duration, max int, out chan<- *batch) *batcher {
	return &batcher{
		window:  window,
		max:     max,
		out:     out,
		pending: make(map[string]*batch),
	}
}

// add joins j to the open batch of its spec, opening one (and arming
// its window timer) if none exists. A batch that reaches max is
// dispatched inline.
func (b *batcher) add(j *job) {
	b.mu.Lock()
	bt := b.pending[j.req.Spec]
	if bt == nil {
		bt = &batch{spec: j.req.Spec}
		b.pending[j.req.Spec] = bt
		spec := j.req.Spec
		bt.timer = time.AfterFunc(b.window, func() { b.flush(spec) })
	}
	bt.jobs = append(bt.jobs, j)
	full := len(bt.jobs) >= b.max
	if full {
		delete(b.pending, j.req.Spec)
		bt.timer.Stop()
	}
	b.mu.Unlock()
	if full {
		b.out <- bt
	}
}

// flush dispatches the pending batch of spec, if it is still pending
// (it may have been dispatched full, or collected by closeFlush).
func (b *batcher) flush(spec string) {
	b.mu.Lock()
	bt := b.pending[spec]
	if bt == nil {
		b.mu.Unlock()
		return
	}
	delete(b.pending, spec)
	// Register the send while still holding the lock so closeFlush,
	// which runs after this critical section or before it, either
	// waits for this send or finds the batch still pending.
	b.sendWG.Add(1)
	b.mu.Unlock()
	b.out <- bt
	b.sendWG.Done()
}

// closeFlush dispatches every still-pending batch and waits for any
// in-flight timer dispatches, after which no further send on out can
// occur. The caller (the server's dispatcher, after the job queue
// closed — so add can no longer be called) may then close out.
func (b *batcher) closeFlush() {
	b.mu.Lock()
	var rest []*batch
	for spec, bt := range b.pending {
		bt.timer.Stop()
		delete(b.pending, spec)
		rest = append(rest, bt)
	}
	b.mu.Unlock()
	for _, bt := range rest {
		b.out <- bt
	}
	b.sendWG.Wait()
}
