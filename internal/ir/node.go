// Package ir implements the MAO intermediate representation.
//
// After parsing, an assembly file is one long doubly-linked list of
// nodes — instructions, labels and directives — exactly mirroring the
// original MAO design. On top of the flat list the package recovers
// the higher-level structure of assembly files: sections and
// functions, with iterators that transparently skip the data fragments
// a compiler may interleave into a function body (e.g. jump tables
// emitted for C switch statements).
package ir

import (
	"fmt"
	"strings"

	"mao/internal/x86"
)

// NodeKind discriminates the three kinds of IR nodes.
type NodeKind uint8

// Node kinds.
const (
	NodeInst NodeKind = iota
	NodeLabel
	NodeDirective
)

// Node is one element of the IR list. Exactly one of Inst, Label and
// Dir is meaningful, selected by Kind.
type Node struct {
	prev, next *Node
	list       *List

	// id is the node's dense per-list index, assigned by the owning
	// List the first time the node is linked (see List.assignID) and
	// kept for the node's lifetime — a node removed and re-inserted
	// into the same list keeps its index. 0 means "never linked".
	id int

	Kind  NodeKind
	Inst  *x86.Inst  // NodeInst
	Label string     // NodeLabel: label name (without trailing colon)
	Dir   *Directive // NodeDirective

	// Section is the name of the section the node lives in, filled in
	// by Unit structure analysis.
	Section string

	// Line is the 1-based source line the node was parsed from, or 0
	// for nodes synthesized by passes. Diagnostics use it for
	// file:line positions.
	Line int

	// Prov is the node's provenance record: which pass invocation
	// created it and which one last mutated it. It is nil for source
	// nodes no pass has touched, so untouched units pay one pointer of
	// space and nothing else. Passes stamp it through the pass.Ctx
	// Insert/Delete/Rewrite helpers; `mao --explain` renders it.
	Prov *Provenance
}

// PassRef identifies one pass invocation of a pipeline run: the pass
// name plus its invocation index, rendered "NAME[idx]". The zero value
// means "no pass" (e.g. a node's origin when it was parsed from
// source). Index -1 marks a programmatic invocation outside a managed
// pipeline (pass.NewCtx), rendered "NAME[?]".
type PassRef struct {
	Pass  string `json:"pass"`
	Index int    `json:"index"`
}

// IsZero reports whether the ref names no invocation.
func (r PassRef) IsZero() bool { return r.Pass == "" }

// String renders the ref in the pipeline error/trace syntax NAME[idx].
func (r PassRef) String() string {
	if r.IsZero() {
		return ""
	}
	if r.Index < 0 {
		return r.Pass + "[?]"
	}
	return fmt.Sprintf("%s[%d]", r.Pass, r.Index)
}

// Provenance records a node's optimization lineage. Origin is the
// invocation that synthesized the node (zero for nodes parsed from
// source — their origin is Node.Line); LastMut is the invocation that
// last changed the node in place (or created it). A compact two-ref
// record is deliberate: full mutation histories would grow with the
// pipeline, while phase-ordering consumers only need creator and last
// writer.
type Provenance struct {
	Origin  PassRef
	LastMut PassRef
}

// Directive is an assembler directive with its raw arguments, e.g.
// {Name: ".p2align", Args: ["4", "", "15"]}.
type Directive struct {
	Name string
	Args []string
}

// String renders the directive as it appears in an assembly file.
func (d *Directive) String() string {
	if len(d.Args) == 0 {
		return d.Name
	}
	return d.Name + "\t" + strings.Join(d.Args, ",")
}

// InstNode returns a fresh instruction node.
func InstNode(in *x86.Inst) *Node { return &Node{Kind: NodeInst, Inst: in} }

// LabelNode returns a fresh label node.
func LabelNode(name string) *Node { return &Node{Kind: NodeLabel, Label: name} }

// DirectiveNode returns a fresh directive node.
func DirectiveNode(name string, args ...string) *Node {
	return &Node{Kind: NodeDirective, Dir: &Directive{Name: name, Args: args}}
}

// Clone returns a deep copy of the node, unlinked from any list:
// instruction, directive and provenance records are independent of
// the original's, so mutating either side never aliases the other.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Label: n.Label, Section: n.Section, Line: n.Line}
	if n.Inst != nil {
		c.Inst = n.Inst.Clone()
	}
	if n.Dir != nil {
		d := Directive{Name: n.Dir.Name, Args: append([]string(nil), n.Dir.Args...)}
		c.Dir = &d
	}
	if n.Prov != nil {
		p := *n.Prov
		c.Prov = &p
	}
	return c
}

// Index returns the node's dense per-list index: a small positive
// integer assigned on first insertion and stable for the node's
// lifetime (re-inserting a removed node keeps its index). 0 means the
// node was never linked into a list. Relaxation uses it to keep
// per-node layout data in slices instead of maps.
func (n *Node) Index() int { return n.id }

// InList reports whether the node is currently linked into a list.
func (n *Node) InList() bool { return n.list != nil }

// Next returns the following node in the unit list, or nil at the end.
func (n *Node) Next() *Node { return n.next }

// Prev returns the preceding node in the unit list, or nil at the
// start.
func (n *Node) Prev() *Node { return n.prev }

// IsInst reports whether the node is an instruction node.
func (n *Node) IsInst() bool { return n.Kind == NodeInst }

// NextInst returns the next instruction node, skipping labels and
// directives, or nil.
func (n *Node) NextInst() *Node {
	for m := n.next; m != nil; m = m.next {
		if m.Kind == NodeInst {
			return m
		}
	}
	return nil
}

// PrevInst returns the previous instruction node, skipping labels and
// directives, or nil.
func (n *Node) PrevInst() *Node {
	for m := n.prev; m != nil; m = m.prev {
		if m.Kind == NodeInst {
			return m
		}
	}
	return nil
}

// String renders the node as one line of assembly (without newline).
func (n *Node) String() string {
	switch n.Kind {
	case NodeInst:
		return "\t" + n.Inst.String()
	case NodeLabel:
		return n.Label + ":"
	case NodeDirective:
		return "\t" + n.Dir.String()
	}
	return fmt.Sprintf("<bad node kind %d>", n.Kind)
}

// IsAlignDirective reports whether the node is an alignment directive
// (.align, .p2align, .balign) and returns the resulting alignment in
// bytes. The GNU assembler treats .p2align's first argument as a power
// of two and .balign's as a byte count; .align behaves like .p2align
// on x86 ELF targets.
func (n *Node) IsAlignDirective() (align int, ok bool) {
	if n.Kind != NodeDirective {
		return 0, false
	}
	var pow2 bool
	switch n.Dir.Name {
	case ".p2align", ".align":
		pow2 = true
	case ".balign":
		pow2 = false
	default:
		return 0, false
	}
	if len(n.Dir.Args) == 0 {
		return 1, true
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(n.Dir.Args[0]), "%d", &v); err != nil {
		return 0, false
	}
	if pow2 {
		if v < 0 || v > 31 {
			return 0, false
		}
		return 1 << v, true
	}
	if v <= 0 {
		return 0, false
	}
	return v, true
}

// AlignMax returns the third argument of a .p2align directive (the
// maximum number of padding bytes), or -1 when unbounded/absent.
func (n *Node) AlignMax() int {
	if n.Kind != NodeDirective || len(n.Dir.Args) < 3 {
		return -1
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(n.Dir.Args[2]), "%d", &v); err != nil {
		return -1
	}
	return v
}
