package ir

import (
	"math/rand/v2"
	"testing"

	"mao/internal/x86"
)

// TestListRandomOperations drives the IR list with random
// insert/remove sequences and checks structural invariants after
// every step: consistent prev/next links, correct length, and
// front/back integrity.
func TestListRandomOperations(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var l List
	var nodes []*Node

	check := func() {
		t.Helper()
		// Forward walk must see exactly Len nodes with consistent
		// back links.
		count := 0
		var prev *Node
		for n := l.Front(); n != nil; n = n.Next() {
			if n.Prev() != prev {
				t.Fatal("prev link broken")
			}
			prev = n
			count++
		}
		if count != l.Len() {
			t.Fatalf("walk found %d nodes, Len says %d", count, l.Len())
		}
		if l.Back() != prev {
			t.Fatal("Back() inconsistent")
		}
		if count != len(nodes) {
			t.Fatalf("shadow list has %d, list has %d", len(nodes), count)
		}
	}

	newNode := func() *Node {
		return InstNode(x86.NewInst(x86.Mnem{Op: x86.OpNOP}))
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.IntN(4); {
		case op == 0 || len(nodes) == 0: // append
			n := newNode()
			l.Append(n)
			nodes = append(nodes, n)
		case op == 1: // insert before a random node
			at := rng.IntN(len(nodes))
			n := newNode()
			l.InsertBefore(n, nodes[at])
			nodes = append(nodes[:at], append([]*Node{n}, nodes[at:]...)...)
		case op == 2: // insert after a random node
			at := rng.IntN(len(nodes))
			n := newNode()
			l.InsertAfter(n, nodes[at])
			nodes = append(nodes[:at+1], append([]*Node{n}, nodes[at+1:]...)...)
		default: // remove a random node
			at := rng.IntN(len(nodes))
			l.Remove(nodes[at])
			nodes = append(nodes[:at], nodes[at+1:]...)
		}
		check()
		// The shadow and real orders must agree.
		i := 0
		for n := l.Front(); n != nil; n = n.Next() {
			if n != nodes[i] {
				t.Fatalf("order mismatch at %d", i)
			}
			i++
		}
	}
}

// TestNodesSnapshotStability: Nodes() snapshots survive arbitrary
// mutation during iteration.
func TestNodesSnapshotStability(t *testing.T) {
	var l List
	for i := 0; i < 20; i++ {
		l.Append(LabelNode("x"))
	}
	snap := l.Nodes()
	for _, n := range snap {
		l.Remove(n)
	}
	if l.Len() != 0 || l.Front() != nil {
		t.Fatal("removal via snapshot left residue")
	}
}
