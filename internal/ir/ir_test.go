package ir

import (
	"strings"
	"testing"

	"mao/internal/x86"
)

// buildUnit constructs a small unit by hand:
//
//	.text
//	.type f,@function
//	f:  nop; jmp .L1
//	.section .rodata   (jump table fragment)
//	.L2: .quad ...
//	.text
//	.L1: ret
//	.size f, .-f
func buildUnit(t *testing.T) *Unit {
	t.Helper()
	u := NewUnit("test.s")
	u.Append(DirectiveNode(".text"))
	u.Append(DirectiveNode(".type", "f", "@function"))
	u.Append(LabelNode("f"))
	u.Append(InstNode(x86.NewInst(x86.Mnem{Op: x86.OpNOP})))
	u.Append(InstNode(x86.NewInst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp(".L1"))))
	u.Append(DirectiveNode(".section", ".rodata"))
	u.Append(LabelNode(".L2"))
	u.Append(DirectiveNode(".quad", ".L1"))
	u.Append(DirectiveNode(".text"))
	u.Append(LabelNode(".L1"))
	u.Append(InstNode(x86.NewInst(x86.Mnem{Op: x86.OpRET})))
	u.Append(DirectiveNode(".size", "f", ".-f"))
	if err := u.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return u
}

func TestAnalyzeStructure(t *testing.T) {
	u := buildUnit(t)
	if got := u.Sections(); len(got) != 2 || got[0] != ".text" || got[1] != ".rodata" {
		t.Errorf("Sections() = %v", got)
	}
	fs := u.Functions()
	if len(fs) != 1 || fs[0].Name != "f" {
		t.Fatalf("Functions() = %v", fs)
	}
	f := fs[0]
	if f.SectionName != ".text" {
		t.Errorf("function section = %q", f.SectionName)
	}
	insts := f.Instructions()
	if len(insts) != 3 {
		t.Fatalf("Instructions() returned %d, want 3", len(insts))
	}
	if insts[0].Inst.Op != x86.OpNOP || insts[2].Inst.Op != x86.OpRET {
		t.Error("instruction order wrong")
	}
	// The .rodata fragment must be excluded from code entries but
	// present in full entries.
	for _, n := range f.CodeEntries() {
		if n.Section != ".text" {
			t.Errorf("CodeEntries leaked %v from %s", n, n.Section)
		}
	}
	all := f.Entries()
	var sawRodata bool
	for _, n := range all {
		if n.Section == ".rodata" {
			sawRodata = true
		}
	}
	if !sawRodata {
		t.Error("Entries() should include the interleaved .rodata fragment")
	}
}

func TestFindLabel(t *testing.T) {
	u := buildUnit(t)
	if n := u.FindLabel(".L1"); n == nil || n.Kind != NodeLabel {
		t.Error("FindLabel(.L1) failed")
	}
	if n := u.FindLabel("nope"); n != nil {
		t.Error("FindLabel returned node for missing label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	u := NewUnit("dup.s")
	u.Append(LabelNode("a"))
	u.Append(LabelNode("a"))
	if err := u.Analyze(); err == nil {
		t.Error("Analyze accepted duplicate label")
	}
}

func TestListEdits(t *testing.T) {
	u := buildUnit(t)
	f := u.Functions()[0]
	insts := f.Instructions()
	nop := InstNode(x86.NewInst(x86.Mnem{Op: x86.OpNOP}))
	u.List.InsertBefore(nop, insts[2])
	if nop.Section != ".text" {
		t.Errorf("inserted node inherited section %q", nop.Section)
	}
	if got := len(f.Instructions()); got != 4 {
		t.Fatalf("after insert, %d instructions", got)
	}
	u.List.Remove(nop)
	if got := len(f.Instructions()); got != 3 {
		t.Fatalf("after remove, %d instructions", got)
	}
	// Removing while iterating over the snapshot must be safe.
	for _, n := range f.Instructions() {
		if n.Inst.Op == x86.OpNOP {
			u.List.Remove(n)
		}
	}
	if got := len(f.Instructions()); got != 2 {
		t.Fatalf("after snapshot removal, %d instructions", got)
	}
}

func TestInsertAfterBack(t *testing.T) {
	var l List
	a := l.Append(LabelNode("a"))
	b := l.InsertAfter(LabelNode("b"), a)
	if l.Back() != b || l.Len() != 2 {
		t.Error("InsertAfter at tail broken")
	}
	c := l.InsertBefore(LabelNode("c"), a)
	if l.Front() != c || c.Next() != a {
		t.Error("InsertBefore at head broken")
	}
}

func TestNextPrevInst(t *testing.T) {
	u := buildUnit(t)
	f := u.Functions()[0]
	first := f.Instructions()[0]
	second := first.NextInst()
	if second == nil || second.Inst.Op != x86.OpJMP {
		t.Fatal("NextInst failed")
	}
	if second.PrevInst() != first {
		t.Error("PrevInst failed")
	}
}

func TestUnitString(t *testing.T) {
	u := buildUnit(t)
	s := u.String()
	for _, want := range []string{".type\tf,@function", "f:", "\tjmp\t.L1", ".size\tf,.-f"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAlignDirective(t *testing.T) {
	n := DirectiveNode(".p2align", "4", "", "15")
	if a, ok := n.IsAlignDirective(); !ok || a != 16 {
		t.Errorf("p2align 4 -> %d, %v", a, ok)
	}
	if m := n.AlignMax(); m != 15 {
		t.Errorf("AlignMax = %d", m)
	}
	n = DirectiveNode(".balign", "32")
	if a, ok := n.IsAlignDirective(); !ok || a != 32 {
		t.Errorf("balign 32 -> %d, %v", a, ok)
	}
	n = DirectiveNode(".globl", "f")
	if _, ok := n.IsAlignDirective(); ok {
		t.Error(".globl misdetected as alignment")
	}
	n = DirectiveNode(".p2align")
	if a, ok := n.IsAlignDirective(); !ok || a != 1 {
		t.Errorf("bare p2align -> %d, %v", a, ok)
	}
}

func TestContains(t *testing.T) {
	u := buildUnit(t)
	f := u.Functions()[0]
	if !f.Contains(f.Instructions()[0]) {
		t.Error("Contains(first instruction) = false")
	}
	if f.Contains(u.List.Front()) {
		t.Error("Contains(.text before function) = true")
	}
}
