package ir

import (
	"fmt"
	"io"
	"strings"

	"mao/internal/x86"
)

// Unit is the IR for one assembly file: the flat node list plus the
// recovered section and function structure.
type Unit struct {
	FileName string
	List     List

	labels    map[string]*Node
	functions []*Function
	sections  []string
}

// NewUnit returns an empty unit.
func NewUnit(fileName string) *Unit {
	return &Unit{FileName: fileName}
}

// Append adds a node at the end of the unit list.
func (u *Unit) Append(n *Node) *Node { return u.List.Append(n) }

// Analyze (re)computes per-node section attribution, the label index
// and the function list. It must be called after parsing and after any
// structural change that adds or removes labels, section switches or
// function markers. Pure instruction edits do not require re-analysis.
func (u *Unit) Analyze() error {
	// Analyze rewrites node section attribution and the label map in
	// place — inputs cached relaxation state depends on — so it counts
	// as a mutation for ir.List.Version consumers.
	u.List.BumpVersion()
	u.labels = make(map[string]*Node)
	u.functions = nil
	u.sections = nil

	section := ".text" // gas default
	seen := map[string]bool{}
	typeFunc := map[string]bool{} // symbols declared .type sym,@function

	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == NodeDirective {
			switch n.Dir.Name {
			case ".text":
				section = ".text"
			case ".data":
				section = ".data"
			case ".bss":
				section = ".bss"
			case ".section":
				if len(n.Dir.Args) > 0 {
					section = strings.TrimSpace(n.Dir.Args[0])
				}
			case ".type":
				if len(n.Dir.Args) >= 2 &&
					strings.Contains(n.Dir.Args[1], "function") {
					typeFunc[strings.TrimSpace(n.Dir.Args[0])] = true
				}
			}
		}
		n.Section = section
		if !seen[section] {
			seen[section] = true
			u.sections = append(u.sections, section)
		}
		if n.Kind == NodeLabel {
			if prev, dup := u.labels[n.Label]; dup && prev != n {
				return fmt.Errorf("ir: duplicate label %q", n.Label)
			}
			u.labels[n.Label] = n
		}
	}

	// Second walk: functions start at a label that was declared
	// .type sym,@function and end at the matching .size directive (or
	// at the start of the next function / end of unit).
	var cur *Function
	for n := u.List.Front(); n != nil; n = n.Next() {
		switch n.Kind {
		case NodeLabel:
			if typeFunc[n.Label] {
				if cur != nil {
					cur.end = n.Prev()
				}
				cur = &Function{Name: n.Label, unit: u, start: n, SectionName: n.Section}
				u.functions = append(u.functions, cur)
			}
		case NodeDirective:
			if cur != nil && n.Dir.Name == ".size" && len(n.Dir.Args) >= 1 &&
				strings.TrimSpace(n.Dir.Args[0]) == cur.Name {
				cur.end = n
				cur = nil
			}
		}
	}
	if cur != nil {
		cur.end = u.List.Back()
	}
	return nil
}

// Clone returns a deep, structurally independent copy of the unit:
// every node is cloned (see Node.Clone) and the copy is re-analyzed,
// so it carries its own label index and function structure. It is the
// cheap way to snapshot a unit — no rendering, no re-parsing.
func (u *Unit) Clone() (*Unit, error) {
	// Slab-allocate the copies: clones are taken per pass invocation by
	// the certifier, so the node, instruction and operand storage comes
	// from three bulk allocations instead of a few per node.
	var nNodes, nInsts, nArgs int
	for n := u.List.Front(); n != nil; n = n.Next() {
		nNodes++
		if n.Inst != nil {
			nInsts++
			nArgs += len(n.Inst.Args)
		}
	}
	nodes := make([]Node, nNodes)
	insts := make([]x86.Inst, nInsts)
	args := make([]x86.Operand, nArgs)

	nu := NewUnit(u.FileName)

	// An analyzed source (the certifier's case — it clones between
	// passes) lets the copy inherit the analysis instead of re-running
	// it: labels, sections and function spans are remapped during the
	// same walk. Node sections were stamped by the source's Analyze and
	// are copied with the node.
	analyzed := u.labels != nil
	var fns []*Function
	var nf *Function
	fi := 0
	if analyzed {
		nu.labels = make(map[string]*Node, len(u.labels))
		nu.sections = append([]string(nil), u.sections...)
		fns = u.functions
	}

	i, j, k := 0, 0, 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		c := &nodes[i]
		i++
		c.Kind, c.Label, c.Section, c.Line = n.Kind, n.Label, n.Section, n.Line
		if n.Inst != nil {
			ci := &insts[j]
			j++
			*ci = *n.Inst
			if na := len(n.Inst.Args); na > 0 {
				ci.Args = args[k : k+na : k+na]
				copy(ci.Args, n.Inst.Args)
				k += na
			}
			c.Inst = ci
		}
		if n.Dir != nil {
			d := Directive{Name: n.Dir.Name, Args: append([]string(nil), n.Dir.Args...)}
			c.Dir = &d
		}
		if n.Prov != nil {
			p := *n.Prov
			c.Prov = &p
		}
		nu.Append(c)
		if analyzed {
			if n.Kind == NodeLabel {
				nu.labels[n.Label] = c
			}
			if fi < len(fns) && n == fns[fi].start {
				nf = &Function{Name: fns[fi].Name, SectionName: fns[fi].SectionName,
					unit: nu, start: c, Unresolved: fns[fi].Unresolved}
				nu.functions = append(nu.functions, nf)
				if fns[fi].end == nil {
					fi++
					nf = nil
				}
			}
			if nf != nil && fi < len(fns) && n == fns[fi].end {
				nf.end = c
				fi++
				nf = nil
			}
		}
	}
	if !analyzed {
		if err := nu.Analyze(); err != nil {
			return nil, err
		}
	}
	return nu, nil
}

// FindLabel returns the node defining the given label, or nil.
func (u *Unit) FindLabel(name string) *Node { return u.labels[name] }

// Functions returns the functions recognized by the last Analyze, in
// file order.
func (u *Unit) Functions() []*Function { return u.functions }

// Function returns the function with the given name, or nil.
func (u *Unit) Function(name string) *Function {
	for _, f := range u.functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Sections returns the section names in first-appearance order.
func (u *Unit) Sections() []string { return u.sections }

// WriteTo emits the unit as textual assembly. It implements
// io.WriterTo so that emission composes with any output sink.
func (u *Unit) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for n := u.List.Front(); n != nil; n = n.Next() {
		k, err := io.WriteString(w, n.String())
		total += int64(k)
		if err != nil {
			return total, err
		}
		k, err = io.WriteString(w, "\n")
		total += int64(k)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the whole unit as assembly text.
func (u *Unit) String() string {
	var b strings.Builder
	u.WriteTo(&b) // strings.Builder writes cannot fail
	return b.String()
}

// Function is a recognized function: the span of nodes from its
// defining label to its .size directive. A function body may be
// interrupted by fragments in other sections (jump tables and similar
// compiler-emitted data); the instruction iterators skip those
// transparently, as the linker will reassemble a contiguous body.
type Function struct {
	Name        string
	SectionName string

	unit  *Unit
	start *Node // the function's defining label
	end   *Node // last node of the function (inclusive); nil if empty

	// Unresolved is set by the CFG builder when an indirect branch in
	// the function could not be pattern-matched; optimization passes
	// consult it to decide whether to proceed.
	Unresolved bool
}

// Unit returns the unit the function belongs to.
func (f *Function) Unit() *Unit { return f.unit }

// EntryLabel returns the node of the function's defining label.
func (f *Function) EntryLabel() *Node { return f.start }

// End returns the last node of the function span (usually its .size
// directive).
func (f *Function) End() *Node { return f.end }

// Entries returns every node in the function span, including nodes in
// interleaved non-code fragments.
func (f *Function) Entries() []*Node {
	var out []*Node
	for n := f.start; n != nil; n = n.Next() {
		out = append(out, n)
		if n == f.end {
			break
		}
	}
	return out
}

// CodeEntries returns the function's nodes restricted to its code
// section, transparently skipping interleaved data fragments.
func (f *Function) CodeEntries() []*Node {
	count := 0
	for n := f.start; n != nil; n = n.Next() {
		if n.Section == f.SectionName {
			count++
		}
		if n == f.end {
			break
		}
	}
	out := make([]*Node, 0, count)
	for n := f.start; n != nil; n = n.Next() {
		if n.Section == f.SectionName {
			out = append(out, n)
		}
		if n == f.end {
			break
		}
	}
	return out
}

// Instructions returns the function's instruction nodes in order,
// skipping labels, directives and interleaved data fragments.
func (f *Function) Instructions() []*Node {
	var out []*Node
	for _, n := range f.CodeEntries() {
		if n.Kind == NodeInst {
			out = append(out, n)
		}
	}
	return out
}

// Contains reports whether node n lies within the function span
// (including interleaved fragments).
func (f *Function) Contains(n *Node) bool {
	for m := f.start; m != nil; m = m.Next() {
		if m == n {
			return true
		}
		if m == f.end {
			break
		}
	}
	return false
}
