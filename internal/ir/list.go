package ir

import (
	"sync"
	"sync/atomic"
)

// List is the doubly-linked node list backing a Unit. The zero value
// is an empty list.
//
// Structural mutations (Append, InsertAfter, InsertBefore, Remove) are
// serialized by an internal mutex so that function passes running
// concurrently over disjoint function spans (see pass.Manager's worker
// pool) can mutate their own spans without racing on the shared
// length and head/tail bookkeeping. Traversal (Front/Back/Next/Prev)
// is deliberately unsynchronized: concurrent traversal of a span
// another goroutine is mutating is a logical race the parallel pass
// contract (pass.ParallelSafe) already forbids.
type List struct {
	mu         sync.Mutex
	head, tail *Node
	len        int

	// nextID hands out dense node indices (see Node.Index); the first
	// linked node gets index 1. Indices are never reclaimed.
	nextID int

	// version counts mutations relevant to layout: every structural op
	// bumps it, and in-place content edits report through BumpVersion.
	// Incremental relaxation snapshots it to detect edits it was not
	// explicitly notified about.
	version atomic.Int64
}

// assignID gives n its dense index on first link. Caller holds l.mu.
func (l *List) assignID(n *Node) {
	if n.id == 0 {
		l.nextID++
		n.id = l.nextID
	}
}

// IndexBound returns an exclusive upper bound on every node index this
// list has assigned (Node.Index values are in [1, IndexBound)).
func (l *List) IndexBound() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID + 1
}

// Version returns the list's mutation counter. It increases on every
// structural mutation (Append/Insert*/Remove), on BumpVersion, and on
// Unit.Analyze (which rewrites node section attribution in place).
func (l *List) Version() int64 { return l.version.Load() }

// BumpVersion records a mutation the list cannot observe itself — an
// in-place edit of a node's instruction, directive or section — so
// cached layout state keyed on Version cannot go stale silently.
func (l *List) BumpVersion() { l.version.Add(1) }

// Front returns the first node or nil.
func (l *List) Front() *Node { return l.head }

// Back returns the last node or nil.
func (l *List) Back() *Node { return l.tail }

// Len returns the number of nodes.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.len
}

// Append adds n at the end of the list and returns it.
func (l *List) Append(n *Node) *Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.assignID(n)
	l.version.Add(1)
	n.list = l
	n.prev = l.tail
	n.next = nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.len++
	return n
}

// InsertAfter inserts n immediately after at and returns n. at must
// belong to this list.
func (l *List) InsertAfter(n, at *Node) *Node {
	if at.list != l {
		panic("ir: InsertAfter anchor not in list")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.assignID(n)
	l.version.Add(1)
	n.list = l
	n.prev = at
	n.next = at.next
	if at.next != nil {
		at.next.prev = n
	} else {
		l.tail = n
	}
	at.next = n
	n.Section = at.Section
	l.len++
	return n
}

// InsertBefore inserts n immediately before at and returns n. at must
// belong to this list.
func (l *List) InsertBefore(n, at *Node) *Node {
	if at.list != l {
		panic("ir: InsertBefore anchor not in list")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.assignID(n)
	l.version.Add(1)
	n.list = l
	n.next = at
	n.prev = at.prev
	if at.prev != nil {
		at.prev.next = n
	} else {
		l.head = n
	}
	at.prev = n
	n.Section = at.Section
	l.len++
	return n
}

// Remove unlinks n from the list. Its Next/Prev pointers are cleared;
// iteration in progress must capture the successor before removing.
func (l *List) Remove(n *Node) {
	if n.list != l {
		panic("ir: Remove of node not in list")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version.Add(1)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next, n.list = nil, nil, nil
	l.len--
}

// Nodes returns every node in order. The snapshot is safe to iterate
// while mutating the list.
func (l *List) Nodes() []*Node {
	out := make([]*Node, 0, l.Len())
	for n := l.head; n != nil; n = n.next {
		out = append(out, n)
	}
	return out
}
