package verify

import (
	"mao/internal/cfg"
	"mao/internal/x86"
	"mao/internal/x86/sidefx"
)

// The high-bits-demanded analysis: a backward may-analysis computing,
// per block, the GPR families whose bits 32–63 may be observed along
// some path from block entry before being fully redefined. It is the
// dual of zext32Facts and exists for the same pass: REDZEXT also
// deletes zero-extending self-moves ("movl %eNN, %eNN") of faint
// registers — ones whose upper half is about to die — where the
// forward must-analysis cannot prove the upper half was already zero.
// At a cut point, a register whose high bits are demanded by neither
// side's continuation is observable only through its low 32 bits, so
// the comparison may mask both sides (see compareCut). The soundness
// argument is the liveness exemption's, refined to the upper half:
// every way the model can observe bits 32–63 — a 64-bit register
// read, an address computation, a call (full argument registers and
// havoc tags), a return (the ABI-observable set) — is counted as a
// demand, so "not demanded" means no later compared value can depend
// on those bits.

// demandFacts holds, indexed by block index, a bitmask over the 16
// GPR families (bit i set means GPR64[i]'s bits 32–63 may be observed
// from block entry on).
type demandFacts []uint16

// gprMask builds the family bitmask of a register list.
func gprMask(regs []x86.Reg) uint16 {
	var m uint16
	for _, r := range regs {
		if r.IsGPR() {
			m |= 1 << gprIndex(r)
		}
	}
	return m
}

// retDemand is what a return observes: the ABI-observable register
// set compareExit checks. tailDemand adds the argument registers a
// tail-called callee receives.
var (
	retDemand  = gprMask(observableAtRet)
	tailDemand = retDemand | gprMask(abiArgRegs)
)

const allDemand = ^uint16(0)

// upperHalfMasks resolves one instruction to the transfer masks of
// BOTH upper-half analyses — the forward zext facts (facts' = (facts
// &^ zclear) | zset) and the backward demand (demand-before =
// (demand-after &^ dkill) | dgen) — from a single side-effect
// resolution, the expensive part.
//
// Zext: the explicit destination (AT&T: last operand), when it is a
// 32-bit GPR, zero-extends; 8/16-bit register writes preserve the
// upper half; everything else written loses the fact. Demand kills:
// the explicit destination fully defines its upper half when written
// at 64 bits, or at 32 bits (zero-extension); implicit full writes
// are left unkilled — conservative. Demand gens: every 64-bit
// register read demands the upper half (the effect tables list
// address components and implicit registers at their syntactic width,
// so sub-64 reads correctly demand nothing). A ret kills everything
// and generates the ABI-observable set; a barrier (call, unknown
// instruction) clears every zext fact, kills everything and demands
// everything.
func upperHalfMasks(in *x86.Inst) (zclear, zset, dkill, dgen uint16) {
	if in.Op == x86.OpRET {
		return allDemand, 0, allDemand, retDemand
	}
	eff := sidefx.InstEffects(in)
	if eff.Barrier {
		return allDemand, 0, allDemand, allDemand
	}
	var dst x86.Reg
	if n := len(in.Args); n > 0 && in.Args[n-1].Kind == x86.KindReg && !in.Args[n-1].Star {
		dst = in.Args[n-1].Reg
	}
	for _, r := range eff.RegsWritten {
		if !r.IsGPR() {
			continue
		}
		bit := uint16(1) << gprIndex(r)
		switch {
		case r == dst && r.Width() == x86.W32 && in.Width == x86.W32:
			zclear |= bit
			zset |= bit
			dkill |= bit
		case r == dst && (r.Width() == x86.W8 || r.Width() == x86.W16):
			// partial write: bits 32–63 survive on both analyses
		default:
			zclear |= bit
			zset &^= bit
			if r == dst && r.Width() == x86.W64 {
				dkill |= bit
			}
		}
	}
	for _, r := range eff.RegsRead {
		if r.IsGPR() && r.Width() == x86.W64 {
			dgen |= 1 << gprIndex(r)
		}
	}
	return
}

// upperHalfFacts composes both analyses' per-block transfer masks in
// one instruction walk — zext composes forward (appending f gives
// clear' = clear | c, set' = (set &^ c) | s), demand backward
// (prepending f gives kill' = kill | k, gen' = (gen &^ k) | g) — and
// solves the two fixpoints.
func upperHalfFacts(g *cfg.Graph) (zextFacts, demandFacts) {
	nb := len(g.Blocks)
	zclear := make([]uint16, nb)
	zset := make([]uint16, nb)
	dkill := make([]uint16, nb)
	dgen := make([]uint16, nb)
	for i, b := range g.Blocks {
		for j := len(b.Insts) - 1; j >= 0; j-- {
			zc, zs, dk, dg := upperHalfMasks(b.Insts[j].Inst)
			dkill[i] |= dk
			dgen[i] = dgen[i]&^dk | dg
			// The forward composite appends in program order; walking
			// backward, instruction j precedes the composite built so
			// far, so the accumulated masks win over j's.
			zset[i] = zset[i] | zs&^zclear[i]
			zclear[i] = zclear[i] | zc
		}
	}
	return solveZext(g, zclear, zset), solveDemand(g, dkill, dgen)
}

// solveDemand solves the backward may-problem to a fixpoint: the
// join over successors is union, exit blocks seed from their
// terminator kind (ret/tail observe the ABI sets, unresolved indirect
// branches observe everything). kill and gen are the per-block
// composite transfer masks, so fixpoint iterations cost two mask
// operations per block.
func solveDemand(g *cfg.Graph, kill, gen []uint16) demandFacts {
	nb := len(g.Blocks)
	in := make([]uint16, nb)
	changed := true
	for changed {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var d uint16
			for _, s := range b.Succs {
				d |= in[s.Index]
			}
			if len(b.Succs) == 0 {
				d = exitDemand(b)
			}
			d = d&^kill[i] | gen[i]
			if d != in[i] {
				in[i] = d
				changed = true
			}
		}
	}
	return demandFacts(in)
}

// exitDemand seeds the demand flowing into a successor-less block's
// terminator from outside the function.
func exitDemand(b *cfg.BasicBlock) uint16 {
	term := b.Terminator()
	if term == nil || term.Op == x86.OpRET {
		return retDemand // explicit ret handled again by the transfer
	}
	if term.Op == x86.OpJMP {
		if _, ok := term.BranchTarget(); ok {
			return tailDemand // tail call to an out-of-function symbol
		}
		return allDemand // unresolved indirect branch
	}
	return allDemand
}
