package verify

import (
	"fmt"
	"math/bits"
	"strings"

	"mao/internal/x86"
)

// callEvent records one observable call: the target, the symbolic
// values of the ABI argument registers at the call site, and the
// memory state passed in. Two evaluations are equivalent only if they
// perform the same calls with the same arguments in the same order —
// stricter than necessary for pure callees, but pass authors do not
// reorder calls, and the concrete fallback recovers the rare false
// alarm.
type callEvent struct {
	target string  // symbol, or the rendered expression of an indirect target
	args   []*Expr // values of RDI,RSI,RDX,RCX,R8,R9,RAX,RSP at the call
	mem    *Expr   // memory chain entering the call
}

func (c callEvent) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("call %s(%s)", c.target, strings.Join(parts, ","))
}

// abiArgRegs are the registers whose values at a call site are
// observable by the callee (integer argument registers, the AL
// vararg count in RAX, and the stack pointer for stack arguments).
var abiArgRegs = []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9, x86.RAX, x86.RSP}

// callerSaved are the register families a call may clobber under the
// SysV ABI. XMM registers are all caller-saved.
var callerSaved = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11,
	x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5, x86.XMM6, x86.XMM7,
	x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11, x86.XMM12, x86.XMM13, x86.XMM14, x86.XMM15,
}

// state is the symbolic machine state at one program point: one
// 64-bit expression per register family, one 0/1 expression per flag
// bit, a store-chain expression for memory, and the ordered list of
// calls performed since block entry. Registers and flags live in dense
// arrays (nil = the untouched block-entry unknown, materialized
// lazily) — states are created per chain evaluation, so construction
// and access must not hash.
type state struct {
	b     *builder
	regs  [numFams]*Expr // indexed by famIdx(Family())
	flags [8]*Expr       // indexed by flag bit position
	mem   *Expr
	calls []callEvent

	// havocSeq numbers havoc events within the block so that the same
	// instruction sequence deterministically produces the same fresh
	// unknowns on both sides of the comparison.
	havocSeq int64
}

// newEntryState builds the canonical unknown state at a block entry.
func newEntryState(b *builder) *state {
	return &state{b: b, mem: b.mem0()}
}

// flagIdx converts one flag bit to its dense array slot.
func flagIdx(f x86.Flags) int { return bits.TrailingZeros8(uint8(f)) }

// numFams sizes the state's register file: 16 GPR families, 16 XMM,
// RIP, RFLAGS, and one shared slot for everything else.
const numFams = 35

// famIdx converts a register FAMILY (the result of Reg.Family()) to
// its dense slot.
func famIdx(f x86.Reg) int {
	switch {
	case f >= x86.RAX && f <= x86.R15:
		return int(f - x86.RAX)
	case f.IsXMM():
		return 16 + f.Num()
	case f == x86.RIP:
		return 32
	case f == x86.RFLAGS:
		return 33
	}
	return 34
}

// reg returns the full 64-bit (or 128-bit lane, for XMM) value of the
// register's family, lazily materializing the block-entry unknown.
func (s *state) reg(r x86.Reg) *Expr {
	f := r.Family()
	i := famIdx(f)
	if e := s.regs[i]; e != nil {
		return e
	}
	e := s.b.initReg(f.String())
	s.regs[i] = e
	return e
}

// readReg returns the value of r at its own width: sub-64 reads mask
// the family value, high-byte reads shift first.
func (s *state) readReg(r x86.Reg) *Expr {
	v := s.reg(r)
	if r.IsHighByte() {
		return s.b.trunc(s.b.shiftOp("shr", v, s.b.konst(8), x86.W64), x86.W8)
	}
	w := r.Width()
	if w == x86.W128 {
		return v // XMM values are opaque 128-bit lanes
	}
	return s.b.trunc(v, w)
}

// writeReg stores v into r with hardware merge semantics: 64/32-bit
// writes replace the family value (32-bit zero-extends), 16/8-bit
// writes merge into the old value, high-byte writes merge shifted.
func (s *state) writeReg(r x86.Reg, v *Expr) {
	f := famIdx(r.Family())
	if r.IsXMM() {
		s.regs[f] = v
		return
	}
	switch r.Width() {
	case x86.W64:
		s.regs[f] = v
	case x86.W32:
		s.regs[f] = s.b.trunc(v, x86.W32)
	case x86.W16:
		old := s.reg(r)
		s.regs[f] = s.b.or(s.b.and(old, s.b.konst(^int64(0xFFFF))), s.b.trunc(v, x86.W16))
	case x86.W8:
		old := s.reg(r)
		if r.IsHighByte() {
			v8 := s.b.shiftOp("shl", s.b.trunc(v, x86.W8), s.b.konst(8), x86.W64)
			s.regs[f] = s.b.or(s.b.and(old, s.b.konst(^int64(0xFF00))), v8)
		} else {
			s.regs[f] = s.b.or(s.b.and(old, s.b.konst(^int64(0xFF))), s.b.trunc(v, x86.W8))
		}
	default:
		s.regs[f] = v
	}
}

// flag returns the value of one flag bit.
func (s *state) flag(f x86.Flags) *Expr {
	i := flagIdx(f)
	if e := s.flags[i]; e != nil {
		return e
	}
	e := s.b.initFlag(flagName(f))
	s.flags[i] = e
	return e
}

func (s *state) setFlag(f x86.Flags, v *Expr) { s.flags[flagIdx(f)] = v }

func flagName(f x86.Flags) string {
	for _, fn := range flagNames {
		if fn.bit == f {
			return fn.name
		}
	}
	return f.String()
}

// nextHavoc allocates the next deterministic havoc sequence number.
func (s *state) nextHavoc() int64 {
	s.havocSeq++
	return s.havocSeq
}

// havocReg replaces a register family with a fresh unknown.
func (s *state) havocReg(r x86.Reg, tag string, seq int64) {
	f := r.Family()
	s.regs[famIdx(f)] = s.b.havoc(tag+"."+f.String(), seq)
}

// havocFlags replaces the given flag bits with fresh unknowns.
func (s *state) havocFlags(fl x86.Flags, tag string, seq int64) {
	for _, fn := range flagNames {
		if fl&fn.bit != 0 {
			s.flags[flagIdx(fn.bit)] = s.b.havoc(tag+"."+fn.name, seq)
		}
	}
}

// addrExpr evaluates a memory operand's effective address.
func (s *state) addrExpr(m x86.Mem) *Expr {
	b := s.b
	e := b.konst(m.Disp)
	if m.Sym != "" {
		e = b.add(e, b.symAddr(m.Sym))
	}
	if m.Base != x86.RegNone && m.Base != x86.RIP {
		e = b.add(e, s.reg(m.Base))
	}
	if m.Index != x86.RegNone {
		idx := s.reg(m.Index)
		if m.Scale > 1 {
			idx = b.mul(idx, b.konst(int64(m.Scale)))
		}
		e = b.add(e, idx)
	}
	return e
}

// readOperand evaluates a source operand at the given access width.
func (s *state) readOperand(a *x86.Operand, w x86.Width) *Expr {
	switch a.Kind {
	case x86.KindImm:
		return s.b.trunc(s.b.konst(a.Imm), w)
	case x86.KindReg:
		return s.readReg(a.Reg)
	case x86.KindMem:
		size := int(w)
		if size == 0 {
			size = 8
		}
		return s.b.load(s.mem, s.addrExpr(a.Mem), size)
	case x86.KindLabel:
		e := s.b.symAddr(a.Sym)
		if a.Off != 0 {
			e = s.b.add(e, s.b.konst(a.Off))
		}
		return e
	}
	return s.b.konst(0)
}

// writeOperand stores v into a destination operand at width w.
func (s *state) writeOperand(a *x86.Operand, v *Expr, w x86.Width) {
	switch a.Kind {
	case x86.KindReg:
		r := a.Reg
		if r.IsGPR() && w != x86.W0 && w <= x86.W64 && r.Width() != w && !r.IsHighByte() {
			r = r.WithWidth(w)
		}
		s.writeReg(r, v)
	case x86.KindMem:
		size := int(w)
		if size == 0 {
			size = 8
		}
		s.mem = s.b.store(s.mem, s.addrExpr(a.Mem), v, size)
	}
}
