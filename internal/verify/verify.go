package verify

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/x86"
)

// Version identifies the translation validator's semantics; bump it
// when the proof rules or exemptions change. The pipeline memo folds
// it into its keys so memoized results never outlive the validator
// they were produced under.
const Version = "verify/1"

// Status classifies one function's verification outcome.
type Status string

// Verification outcomes.
const (
	// StatusProved means the symbolic evaluator proved observational
	// equivalence (or the function is textually unchanged).
	StatusProved Status = "proved"
	// StatusConcrete means symbolic normalization could not decide but
	// randomized concrete execution agreed on every trial.
	StatusConcrete Status = "concrete"
	// StatusRefuted means concrete execution produced diverging
	// architectural end-states: the transformation is a miscompile.
	StatusRefuted Status = "refuted"
	// StatusInconclusive means neither the symbolic evaluator nor the
	// concrete fallback could reach a verdict (e.g. the function is not
	// executable in the sandbox). Inconclusive is not a refutation.
	StatusInconclusive Status = "inconclusive"
)

// Mismatch is a structured counterexample: the first observable
// disagreement between the two versions of a function.
type Mismatch struct {
	Func   string `json:"func"`
	Block  string `json:"block,omitempty"` // before-side block (label or B-index)
	What   string `json:"what"`            // "reg rax", "flag ZF", "memory", "calls", "cfg", ...
	Before string `json:"before"`
	After  string `json:"after"`
}

func (m *Mismatch) String() string {
	loc := m.Func
	if m.Block != "" {
		loc += "/" + m.Block
	}
	return fmt.Sprintf("%s: %s: before=%s after=%s", loc, m.What, m.Before, m.After)
}

// FuncResult is one function's verdict.
type FuncResult struct {
	Func     string    `json:"func"`
	Status   Status    `json:"status"`
	Mismatch *Mismatch `json:"mismatch,omitempty"`
	// Note records why the symbolic engine handed off to the concrete
	// fallback (first symbolic disagreement or structural bailout).
	Note string `json:"note,omitempty"`
}

// Result is the verdict of one Equiv call over a whole unit.
type Result struct {
	Funcs []FuncResult `json:"funcs"`
}

// Clean reports whether no function was refuted.
func (r *Result) Clean() bool { return len(r.Refuted()) == 0 }

// Refuted returns the refuted functions.
func (r *Result) Refuted() []FuncResult {
	var out []FuncResult
	for _, f := range r.Funcs {
		if f.Status == StatusRefuted {
			out = append(out, f)
		}
	}
	return out
}

// Counts returns the number of functions per status.
func (r *Result) Counts() map[Status]int {
	m := make(map[Status]int, 4)
	for _, f := range r.Funcs {
		m[f.Status]++
	}
	return m
}

// Options tunes an equivalence check.
type Options struct {
	// ConcreteRuns is the number of randomized concrete executions the
	// fallback performs per function (default 4).
	ConcreteRuns int
	// Seed seeds the fallback's input randomization; runs derive their
	// seeds deterministically from it.
	Seed int64
	// MaxInsts caps each concrete execution (default 400,000).
	MaxInsts int64
	// SkipConcrete disables the concrete fallback: undecided functions
	// come back StatusInconclusive. Used by tests probing the symbolic
	// engine alone.
	SkipConcrete bool
	// Workers bounds the number of functions verified concurrently
	// (0 = GOMAXPROCS, 1 = sequential). Each function's check is
	// independent: the units are only read, and every symbolic builder
	// is private to its function.
	Workers int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.ConcreteRuns == 0 {
		out.ConcreteRuns = 4
	}
	if out.MaxInsts == 0 {
		out.MaxInsts = 400_000
	}
	return out
}

// Equiv proves, function by function, that after is observationally
// equivalent to before. This is the oracle API the SYNTH roadmap item
// builds on: a rewrite search proposes a transformed unit and accepts
// it only when Equiv comes back clean.
//
// Three engines run in sequence per function: a textual fast path
// (unchanged functions are trivially equal), block-level symbolic
// bisimulation (see equivFunc), and randomized concrete execution.
// Only concrete divergence refutes — a symbolic mismatch alone falls
// through to execution, so incomplete normalization can never produce
// a false positive.
func Equiv(before, after *ir.Unit, opts *Options) *Result {
	o := opts.withDefaults()
	afterFns := make(map[string]*ir.Function)
	for _, f := range after.Functions() {
		afterFns[f.Name] = f
	}
	fns := before.Functions()
	res := &Result{Funcs: make([]FuncResult, len(fns))}
	// The expression builder is shared across the function pairs one
	// worker decides: interned constants and block-entry unknowns carry
	// over, and the hash table is zeroed once per worker, not per
	// function.
	decide := func(i int, bld *builder) {
		fb := fns[i]
		fa, ok := afterFns[fb.Name]
		if !ok {
			res.Funcs[i] = FuncResult{
				Func: fb.Name, Status: StatusRefuted,
				Mismatch: &Mismatch{Func: fb.Name, What: "function",
					Before: "present", After: "missing"},
			}
			return
		}
		res.Funcs[i] = equivFunc(before, after, fb, fa, o, bld)
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		bld := newBuilder()
		for i := range fns {
			decide(i, bld)
		}
		return res
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bld := newBuilder()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				decide(i, bld)
			}
		}()
	}
	wg.Wait()
	return res
}

// entriesEqual is the structural fast path: two functions whose node
// spans are field-for-field identical are trivially equivalent, with
// no rendering, no slices and no symbolic evaluation.
func entriesEqual(fb, fa *ir.Function) bool {
	nb, na := fb.EntryLabel(), fa.EntryLabel()
	endB, endA := fb.End(), fa.End()
	for nb != nil && na != nil {
		if !nodeEqual(nb, na) {
			return false
		}
		doneB, doneA := nb == endB, na == endA
		if doneB || doneA {
			return doneB == doneA
		}
		nb, na = nb.Next(), na.Next()
	}
	return nb == na
}

func nodeEqual(a, b *ir.Node) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case ir.NodeInst:
		return instEqual(a.Inst, b.Inst)
	case ir.NodeLabel:
		return a.Label == b.Label
	case ir.NodeDirective:
		if a.Dir.Name != b.Dir.Name || len(a.Dir.Args) != len(b.Dir.Args) {
			return false
		}
		for i := range a.Dir.Args {
			if a.Dir.Args[i] != b.Dir.Args[i] {
				return false
			}
		}
		return true
	}
	return false
}

func instEqual(a, b *x86.Inst) bool {
	if a.Op != b.Op || a.Cond != b.Cond || a.Width != b.Width ||
		a.SrcWidth != b.SrcWidth || a.Lock != b.Lock || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// equivFunc decides one function.
func equivFunc(ub, ua *ir.Unit, fb, fa *ir.Function, o Options, bld *builder) FuncResult {
	if entriesEqual(fb, fa) {
		return FuncResult{Func: fb.Name, Status: StatusProved}
	}
	mm := symEquiv(bld, fb, fa)
	if mm == nil {
		return FuncResult{Func: fb.Name, Status: StatusProved}
	}
	note := mm.String()
	if o.SkipConcrete {
		return FuncResult{Func: fb.Name, Status: StatusInconclusive, Mismatch: mm, Note: note}
	}
	verdict, cmm := concreteEquiv(ub, ua, fb.Name, o)
	switch verdict {
	case concreteAgree:
		return FuncResult{Func: fb.Name, Status: StatusConcrete, Note: note}
	case concreteDisagree:
		return FuncResult{Func: fb.Name, Status: StatusRefuted, Mismatch: cmm, Note: note}
	}
	return FuncResult{Func: fb.Name, Status: StatusInconclusive, Mismatch: mm, Note: note}
}

// termKind classifies a canonicalized block terminator.
type termKind int

const (
	termRet   termKind = iota // ret (or fell off the function end)
	termGoto                  // unconditional transfer to one in-function block
	termCond                  // two-way conditional branch
	termTail                  // jmp to an out-of-function symbol (tail call)
	termTable                 // resolved indirect jump through a table
	termOther                 // anything the engine cannot align
)

// termInfo is one block chain's canonicalized exit: a fallthrough and
// an explicit "jmp next" both become termGoto, so branch-elimination
// and block-splitting passes compare structurally.
type termInfo struct {
	kind    termKind
	cond    x86.Cond
	taken   *cfg.BasicBlock
	fall    *cfg.BasicBlock
	sym     string
	targets []*cfg.BasicBlock
	tval    *Expr
}

// observableAtRet lists the register families compared at function
// exit: the ABI return registers, the stack pointer and every
// callee-saved register. Flags are dead at ret by ABI contract.
var observableAtRet = []x86.Reg{
	x86.RAX, x86.RDX, x86.RSP, x86.RBX, x86.RBP,
	x86.R12, x86.R13, x86.R14, x86.R15, x86.XMM0, x86.XMM1,
}

// allFamilies enumerates every register family the liveness layer
// tracks (16 GPR + 16 XMM).
var allFamilies = func() []x86.Reg {
	fams := append([]x86.Reg(nil), x86.GPR64...)
	for r := x86.XMM0; r <= x86.XMM15; r++ {
		fams = append(fams, r)
	}
	return fams
}()

// pairState is the bisimulation worklist entry: chain heads that must
// be observationally equal when entered with identical states.
type pairState struct{ b, a *cfg.BasicBlock }

// symEquiv runs block-level symbolic bisimulation over the two CFGs.
// It returns nil when equivalence is proved, or the first mismatch —
// which the caller treats as "undecided", never as a refutation.
//
// Corresponding blocks are evaluated from fresh symbolic entry states
// (so loops need no unrolling) and must agree, at every cut point, on:
// the canonicalized terminator, the branch condition value, every
// register family live into either side's successors, every flag bit
// live into either side's successors, the memory store chain, and the
// ordered list of calls. At ret cuts the live sets collapse to the ABI
// observable set and stores below the entry stack pointer are
// discarded as dead.
func symEquiv(b *builder, fb, fa *ir.Function) *Mismatch {
	gb, ga := cfg.Build(fb), cfg.Build(fa)
	name := fb.Name
	if len(gb.Unresolved) > 0 || len(ga.Unresolved) > 0 {
		return &Mismatch{Func: name, What: "cfg", Before: "unresolved indirect branch", After: ""}
	}
	if len(gb.Blocks) == 0 || len(ga.Blocks) == 0 {
		if len(gb.Blocks) == len(ga.Blocks) {
			return nil
		}
		return &Mismatch{Func: name, What: "cfg", Before: fmt.Sprint(len(gb.Blocks)), After: fmt.Sprint(len(ga.Blocks))}
	}
	lb, la := dataflow.LiveBlocks(gb), dataflow.LiveBlocks(ga)
	zb, db := upperHalfFacts(gb)
	za, da := upperHalfFacts(ga)

	paired := make(map[*cfg.BasicBlock]*cfg.BasicBlock)
	paired[gb.Blocks[0]] = ga.Blocks[0]
	work := []pairState{{gb.Blocks[0], ga.Blocks[0]}}
	push := func(pb, pa *cfg.BasicBlock) *Mismatch {
		if pb == nil || pa == nil {
			return &Mismatch{Func: name, What: "cfg", Before: blockName(pb), After: blockName(pa)}
		}
		if prev, ok := paired[pb]; ok {
			if prev != pa {
				return &Mismatch{Func: name, Block: blockName(pb), What: "cfg",
					Before: "pairs with " + blockName(prev), After: "also pairs with " + blockName(pa)}
			}
			return nil
		}
		paired[pb] = pa
		work = append(work, pairState{pb, pa})
		return nil
	}

	for len(work) > 0 {
		p := work[0]
		work = work[1:]

		chainB := extendChain(gb, p.b)
		chainA := extendChain(ga, p.a)

		// Structural fast path: two chains with identical instruction
		// sequences evaluate identically from the (identical) fresh entry
		// states — the evaluator is deterministic, havoc numbering
		// included — so every observable at this cut is equal by
		// construction and only the successor pairing remains. Successor
		// order is determined by the (identical) terminator: branch target
		// first, fallthrough second, table targets in table order. A succ
		// count mismatch (e.g. a branch-to-fallthrough dedup on one side
		// only) falls through to symbolic evaluation. Pairing asserts
		// equivalence obligations checked later; it never assumes them.
		if chainsIdentical(chainB, chainA) {
			tailB, tailA := chainB[len(chainB)-1], chainA[len(chainA)-1]
			if len(tailB.Succs) == len(tailA.Succs) {
				for i := range tailB.Succs {
					if mm := push(tailB.Succs[i], tailA.Succs[i]); mm != nil {
						return mm
					}
				}
				continue
			}
		}

		// Paired blocks are entered with equal concrete states, so an
		// upper-32-zero fact proven on either side holds for the shared
		// entry value; both chains seed the same masked unknowns.
		zmask := zb[p.b.Index] | za[p.a.Index]
		sb, tb := evalChain(b, gb, chainB, zmask)
		sa, ta := evalChain(b, ga, chainA, zmask)
		blk := blockName(p.b)

		if mm := compareCut(name, blk, sb, sa, tb, ta, lb, la, db, da, push); mm != nil {
			return mm
		}
	}
	return nil
}

func blockName(b *cfg.BasicBlock) string {
	if b == nil {
		return "<none>"
	}
	return b.String()
}

// compareCut checks one cut point: terminator alignment, then the
// liveness-exempted state comparison, then successor pairing via push.
func compareCut(name, blk string, sb, sa *state, tb, ta termInfo,
	lb, la *dataflow.Liveness, db, da demandFacts,
	push func(pb, pa *cfg.BasicBlock) *Mismatch) *Mismatch {

	if tb.kind == termOther || ta.kind == termOther {
		return &Mismatch{Func: name, Block: blk, What: "cfg",
			Before: termName(tb), After: termName(ta)}
	}
	if tb.kind != ta.kind {
		// One side branches where the other falls through or returns:
		// no alignment (jump threading, tail duplication). Undecided.
		return &Mismatch{Func: name, Block: blk, What: "cfg",
			Before: termName(tb), After: termName(ta)}
	}

	var succs []pairState
	switch tb.kind {
	case termRet:
		return compareExit(name, blk, sb, sa)

	case termTail:
		if tb.sym != ta.sym {
			return &Mismatch{Func: name, Block: blk, What: "tail-call target",
				Before: tb.sym, After: ta.sym}
		}
		// A tail call hands the callee the argument registers too.
		for _, r := range abiArgRegs {
			if vb, va := sb.reg(r), sa.reg(r); vb != va {
				return &Mismatch{Func: name, Block: blk, What: "reg " + r.String() + " at tail call",
					Before: vb.String(), After: va.String()}
			}
		}
		return compareExit(name, blk, sb, sa)

	case termGoto:
		succs = []pairState{{tb.taken, ta.taken}}

	case termCond:
		cvb := sb.condValue(tb.cond)
		cva := sa.condValue(tb.cond)
		if cvb != cva {
			return &Mismatch{Func: name, Block: blk,
				What:   "branch condition " + tb.cond.String(),
				Before: cvb.String(), After: cva.String()}
		}
		switch ta.cond {
		case tb.cond:
			succs = []pairState{{tb.taken, ta.taken}, {tb.fall, ta.fall}}
		case tb.cond.Negate():
			succs = []pairState{{tb.taken, ta.fall}, {tb.fall, ta.taken}}
		default:
			return &Mismatch{Func: name, Block: blk, What: "branch condition",
				Before: tb.cond.String(), After: ta.cond.String()}
		}

	case termTable:
		if tb.tval != ta.tval {
			return &Mismatch{Func: name, Block: blk, What: "indirect jump target",
				Before: tb.tval.String(), After: ta.tval.String()}
		}
		if len(tb.targets) != len(ta.targets) {
			return &Mismatch{Func: name, Block: blk, What: "jump table arity",
				Before: fmt.Sprint(len(tb.targets)), After: fmt.Sprint(len(ta.targets))}
		}
		for i := range tb.targets {
			succs = append(succs, pairState{tb.targets[i], ta.targets[i]})
		}
	}

	// Exemptions: only registers and flags live into some paired
	// successor — on either side — are observable at this cut.
	var liveRegs dataflow.RegSet
	var liveFlags x86.Flags
	for _, sp := range succs {
		liveRegs = liveRegs.Union(lb.BlockLiveIn(sp.b)).Union(la.BlockLiveIn(sp.a))
		liveFlags |= lb.BlockFlagsIn(sp.b) | la.BlockFlagsIn(sp.a)
	}
	for _, fam := range allFamilies {
		if !liveRegs.Has(fam) {
			continue
		}
		// A family neither side ever wrote or read is still the shared
		// entry unknown on both — skip without materializing it.
		if i := famIdx(fam); sb.regs[i] == nil && sa.regs[i] == nil {
			continue
		}
		vb, va := sb.reg(fam), sa.reg(fam)
		if vb == va {
			continue
		}
		// A GPR whose bits 32–63 are demanded by neither side's
		// continuation is observable only through its low half: compare
		// the masked values instead (see demand.go for the argument).
		if fam.IsGPR() && !highDemanded(fam, succs, db, da) {
			mask := sb.b.konst(0xFFFFFFFF)
			if sb.b.and(vb, mask) == sb.b.and(va, mask) {
				continue
			}
		}
		return &Mismatch{Func: name, Block: blk, What: "reg " + fam.String(),
			Before: vb.String(), After: va.String()}
	}
	for _, fn := range flagNames {
		if liveFlags&fn.bit == 0 {
			continue
		}
		if sb.flags[flagIdx(fn.bit)] == nil && sa.flags[flagIdx(fn.bit)] == nil {
			continue
		}
		if vb, va := sb.flag(fn.bit), sa.flag(fn.bit); vb != va {
			return &Mismatch{Func: name, Block: blk, What: "flag " + fn.name,
				Before: vb.String(), After: va.String()}
		}
	}
	if mm := compareMemCalls(name, blk, sb, sa, false); mm != nil {
		return mm
	}
	for _, sp := range succs {
		if mm := push(sp.b, sp.a); mm != nil {
			return mm
		}
	}
	return nil
}

// compareExit checks a ret (or tail-call) cut: the ABI observable
// register set, calls, and the store chain minus dead stack slots.
func compareExit(name, blk string, sb, sa *state) *Mismatch {
	for _, r := range observableAtRet {
		if i := famIdx(r.Family()); sb.regs[i] == nil && sa.regs[i] == nil {
			continue
		}
		if vb, va := sb.reg(r), sa.reg(r); vb != va {
			return &Mismatch{Func: name, Block: blk, What: "reg " + r.String() + " at exit",
				Before: vb.String(), After: va.String()}
		}
	}
	return compareMemCalls(name, blk, sb, sa, true)
}

func compareMemCalls(name, blk string, sb, sa *state, atExit bool) *Mismatch {
	mb, ma := sb.mem, sa.mem
	if atExit {
		rsp := sb.b.initReg("rsp")
		mb = pruneDeadStack(sb.b, mb, rsp)
		ma = pruneDeadStack(sa.b, ma, rsp)
	}
	if mb != ma {
		return &Mismatch{Func: name, Block: blk, What: "memory",
			Before: mb.String(), After: ma.String()}
	}
	if len(sb.calls) != len(sa.calls) {
		return &Mismatch{Func: name, Block: blk, What: "calls",
			Before: fmt.Sprint(len(sb.calls)), After: fmt.Sprint(len(sa.calls))}
	}
	for i := range sb.calls {
		cb, ca := sb.calls[i], sa.calls[i]
		if cb.target != ca.target || cb.mem != ca.mem || !equalExprs(cb.args, ca.args) {
			return &Mismatch{Func: name, Block: blk, What: fmt.Sprintf("call #%d", i),
				Before: cb.String(), After: ca.String()}
		}
	}
	return nil
}

// highDemanded reports whether some paired successor's continuation,
// on either side, may observe bits 32–63 of fam.
func highDemanded(fam x86.Reg, succs []pairState, db, da demandFacts) bool {
	bit := uint16(1) << gprIndex(fam)
	for _, sp := range succs {
		if db[sp.b.Index]&bit != 0 || da[sp.a.Index]&bit != 0 {
			return true
		}
	}
	return false
}

func equalExprs(a, b []*Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pruneDeadStack drops stores wholly below the entry stack pointer —
// the function's own frame and red zone, dead once it returns. The
// walk stops at the first non-store link (call havoc, block entry).
func pruneDeadStack(b *builder, mem, rsp *Expr) *Expr {
	if mem.op != "store" {
		return mem
	}
	rest := pruneDeadStack(b, mem.args[0], rsp)
	base, off := addrBase(mem.args[1])
	if base == rsp && off+mem.c <= 0 {
		return rest
	}
	if rest == mem.args[0] {
		return mem
	}
	return b.mk("store", mem.c, "", rest, mem.args[1], mem.args[2])
}

// extendChain canonicalizes block structure: starting from head, keep
// absorbing the fallthrough successor while it is the only way in —
// so a pass that splits a block with a fresh label, or merges two,
// still aligns chain-for-chain with the original.
// chainsIdentical reports whether two chains carry field-for-field
// identical instruction sequences, ignoring block boundaries and
// labels (neither affects evaluation).
func chainsIdentical(cb, ca []*cfg.BasicBlock) bool {
	bi, bj, ai, aj := 0, 0, 0, 0
	for {
		for bi < len(cb) && bj >= len(cb[bi].Insts) {
			bi, bj = bi+1, 0
		}
		for ai < len(ca) && aj >= len(ca[ai].Insts) {
			ai, aj = ai+1, 0
		}
		doneB, doneA := bi >= len(cb), ai >= len(ca)
		if doneB || doneA {
			return doneB && doneA
		}
		if !instEqual(cb[bi].Insts[bj].Inst, ca[ai].Insts[aj].Inst) {
			return false
		}
		bj++
		aj++
	}
}

func extendChain(g *cfg.Graph, head *cfg.BasicBlock) []*cfg.BasicBlock {
	chain := []*cfg.BasicBlock{head}
	cur := head
	for cur.Terminator() == nil && len(cur.Succs) == 1 {
		next := cur.Succs[0]
		if len(next.Preds) != 1 || next == g.Blocks[0] || next == head {
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// evalChain symbolically executes one block chain from a fresh entry
// state and canonicalizes its terminator. zmask seeds GPR families
// whose upper halves are provably zero on entry (see zext32Facts) as
// pre-masked unknowns.
func evalChain(b *builder, g *cfg.Graph, chain []*cfg.BasicBlock, zmask uint16) (*state, termInfo) {
	s := newEntryState(b)
	for i := 0; i < 16; i++ {
		if zmask&(1<<i) != 0 {
			fam := x86.GPR64[i]
			s.regs[famIdx(fam)] = b.and(b.initReg(fam.String()), b.konst(0xFFFFFFFF))
		}
	}
	last := chain[len(chain)-1]
	term := last.Terminator()
	for _, blk := range chain {
		for _, n := range blk.Insts {
			if blk == last && term != nil && n == last.Last() {
				continue
			}
			s.stepInst(n.Inst)
		}
	}
	return s, canonTerm(g, last, term, s)
}

// canonTerm canonicalizes a chain's exit into a termInfo.
func canonTerm(g *cfg.Graph, last *cfg.BasicBlock, term *x86.Inst, s *state) termInfo {
	next := func() *cfg.BasicBlock {
		if last.Index+1 < len(g.Blocks) {
			return g.Blocks[last.Index+1]
		}
		return nil
	}
	if term == nil {
		if n := next(); n != nil {
			return termInfo{kind: termGoto, taken: n}
		}
		return termInfo{kind: termRet}
	}
	switch term.Op {
	case x86.OpRET:
		return termInfo{kind: termRet}
	case x86.OpJMP:
		if tgt, ok := term.BranchTarget(); ok {
			if tb := g.BlockByLabel(tgt); tb != nil {
				return termInfo{kind: termGoto, taken: tb}
			}
			return termInfo{kind: termTail, sym: tgt}
		}
		if term.IsIndirectBranch() && len(last.Succs) > 0 && len(term.Args) == 1 {
			return termInfo{kind: termTable,
				targets: last.Succs,
				tval:    s.readOperand(&term.Args[0], x86.W64)}
		}
	case x86.OpJCC:
		if tgt, ok := term.BranchTarget(); ok {
			taken := g.BlockByLabel(tgt)
			fall := next()
			if taken != nil && fall != nil {
				return termInfo{kind: termCond, cond: term.Cond, taken: taken, fall: fall}
			}
		}
	}
	return termInfo{kind: termOther}
}

func termName(t termInfo) string {
	switch t.kind {
	case termRet:
		return "ret"
	case termGoto:
		return "goto " + blockName(t.taken)
	case termCond:
		return "j" + t.cond.String() + " " + blockName(t.taken)
	case termTail:
		return "tail " + t.sym
	case termTable:
		return fmt.Sprintf("table[%d]", len(t.targets))
	}
	return "unaligned"
}
