package verify

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/check"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/trace"
	"mao/internal/x86"
)

// The mutation suite: deliberately broken pass variants — one per
// classic miscompile family — each of which the certifier must refute
// and attribute to the exact NAME[idx] invocation.

// synthInst parses one instruction line into an x86.Inst.
func synthInst(line string) *x86.Inst {
	u, err := asm.ParseString("synth.s", "\t"+line+"\n")
	if err != nil {
		panic(err)
	}
	for _, n := range u.List.Nodes() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	panic("no instruction in " + line)
}

type mutBase struct{ name, desc string }

func (m mutBase) Name() string        { return m.name }
func (m mutBase) Description() string { return m.desc }

// mutDrop deletes the first add — a dropped instruction.
type mutDrop struct{ mutBase }

func (mutDrop) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	for _, n := range f.Instructions() {
		if n.Inst.Op == x86.OpADD {
			ctx.Delete(n)
			return true, nil
		}
	}
	return false, nil
}

// mutSwap swaps the operands of the first two-register sub —
// computing dst-src where src-dst was meant.
type mutSwap struct{ mutBase }

func (mutSwap) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	for _, n := range f.Instructions() {
		in := n.Inst
		if in.Op == x86.OpSUB && len(in.Args) == 2 &&
			in.Args[0].Kind == x86.KindReg && in.Args[1].Kind == x86.KindReg {
			in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
			ctx.Rewrite(n)
			return true, nil
		}
	}
	return false, nil
}

// mutClob overwrites a callee-saved register at function entry.
type mutClob struct{ mutBase }

func (mutClob) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	ctx.InsertAfter(ir.InstNode(synthInst("movq $777, %rbx")), f.EntryLabel())
	return true, nil
}

// mutBranch retargets the first conditional branch at a different
// label.
type mutBranch struct{ mutBase }

func (mutBranch) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	for _, n := range f.Instructions() {
		in := n.Inst
		if in.Op == x86.OpJCC && len(in.Args) == 1 && in.Args[0].Kind == x86.KindLabel {
			in.Args[0].Sym = ".LVB"
			ctx.Rewrite(n)
			return true, nil
		}
	}
	return false, nil
}

// mutGood changes nothing.
type mutGood struct{ mutBase }

func (mutGood) RunFunc(*pass.Ctx, *ir.Function) (bool, error) { return false, nil }

func init() {
	pass.Register(func() pass.Pass { return mutDrop{mutBase{"TVDROP", "mutation: drop an instruction"}} })
	pass.Register(func() pass.Pass { return mutSwap{mutBase{"TVSWAP", "mutation: swap sub operands"}} })
	pass.Register(func() pass.Pass { return mutClob{mutBase{"TVCLOB", "mutation: clobber a callee-save"}} })
	pass.Register(func() pass.Pass { return mutBranch{mutBase{"TVBRANCH", "mutation: retarget a branch"}} })
	pass.Register(func() pass.Pass { return mutGood{mutBase{"TVGOOD", "mutation: no-op"}} })
}

// mutationSrc exercises every mutation: an add to drop, a reg-reg sub
// to swap, a conditional branch to retarget (taken for nearly every
// random input), and a spare target .LVB whose behavior differs.
const mutationSrc = `	.text
	.type f,@function
f:
	movq %rdi, %rax
	addq %rsi, %rax
	subq %rdx, %rax
	testq %rdi, %rdi
	jne .LVA
	movl $0, %eax
	ret
.LVA:
	addq $1, %rax
	ret
.LVB:
	movq $99, %rax
	ret
	.size f,.-f
`

func runMutation(t *testing.T, pipeline string) *Certifier {
	t.Helper()
	u, err := asm.ParseString("mut.s", mutationSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pass.NewManager(pipeline)
	if err != nil {
		t.Fatalf("NewManager(%q): %v", pipeline, err)
	}
	cert := &Certifier{}
	mgr.Hook = cert
	if _, err := mgr.Run(u); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return cert
}

func TestMutationsRefuted(t *testing.T) {
	cases := []struct {
		pipeline  string
		wantPass  string
		wantIndex int
	}{
		{"TVDROP", "TVDROP", 0},
		{"TVSWAP", "TVSWAP", 0},
		{"TVCLOB", "TVCLOB", 0},
		{"TVBRANCH", "TVBRANCH", 0},
		// Attribution must name the guilty invocation, not its
		// harmless neighbors.
		{"TVGOOD:TVCLOB:TVGOOD", "TVCLOB", 1},
	}
	for _, tc := range cases {
		t.Run(tc.pipeline, func(t *testing.T) {
			cert := runMutation(t, tc.pipeline)
			if len(cert.Violations) == 0 {
				t.Fatal("mutation not refuted")
			}
			for _, v := range cert.Violations {
				if v.Pass != tc.wantPass || v.Index != tc.wantIndex {
					t.Errorf("attributed to %s[%d], want %s[%d]",
						v.Pass, v.Index, tc.wantPass, tc.wantIndex)
				}
				if v.Diag.Rule != "verify-equiv" {
					t.Errorf("rule = %s, want verify-equiv", v.Diag.Rule)
				}
				if v.Diag.Func != "f" {
					t.Errorf("func = %s, want f", v.Diag.Func)
				}
				if !strings.Contains(v.Diag.Msg, "counterexample=") {
					t.Errorf("diag carries no counterexample: %s", v.Diag.Msg)
				}
			}
		})
	}
}

func TestMutationCleanPipeline(t *testing.T) {
	cert := runMutation(t, "TVGOOD:TVGOOD")
	if len(cert.Violations) != 0 {
		t.Fatalf("false positives on a no-op pipeline: %v", cert.Violations)
	}
	if len(cert.Invocations) != 2 {
		t.Fatalf("got %d invocation records, want 2", len(cert.Invocations))
	}
	for _, inv := range cert.Invocations {
		if !inv.Result.Clean() {
			t.Errorf("%s[%d] not clean: %+v", inv.Pass, inv.Index, inv.Result)
		}
	}
}

func TestCertifierFailFast(t *testing.T) {
	u, err := asm.ParseString("mut.s", mutationSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pass.NewManager("TVGOOD:TVCLOB:TVGOOD")
	if err != nil {
		t.Fatal(err)
	}
	cert := &Certifier{FailFast: true}
	mgr.Hook = cert
	_, err = mgr.Run(u)
	if err == nil {
		t.Fatal("FailFast pipeline succeeded, want error")
	}
	if !strings.Contains(err.Error(), "TVCLOB[1]") ||
		!strings.Contains(err.Error(), "verification failed") {
		t.Errorf("error = %v, want TVCLOB[1] verification failure", err)
	}
}

func TestCertifierSkip(t *testing.T) {
	u, err := asm.ParseString("mut.s", mutationSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pass.NewManager("TVCLOB")
	if err != nil {
		t.Fatal(err)
	}
	cert := &Certifier{Skip: map[string]bool{"TVCLOB": true}}
	mgr.Hook = cert
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	if len(cert.Violations) != 0 {
		t.Errorf("skipped pass still refuted: %v", cert.Violations)
	}
}

// TestCertifierComposesWithCheck: verify.Certifier and check.Certifier
// stack through pass.Hooks, each attributing through its own rules.
func TestCertifierComposesWithCheck(t *testing.T) {
	u, err := asm.ParseString("mut.s", mutationSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pass.NewManager("TVCLOB")
	if err != nil {
		t.Fatal(err)
	}
	vcert := &Certifier{}
	ccert := &check.Certifier{}
	mgr.Hook = pass.Hooks{ccert, vcert}
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	if len(vcert.Violations) == 0 {
		t.Error("verify certifier silent under composition")
	}
}

// TestCertifierEmitsVerifySpans: each validated invocation lands one
// KindVerify span with status counters.
func TestCertifierEmitsVerifySpans(t *testing.T) {
	u, err := asm.ParseString("mut.s", mutationSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pass.NewManager("TVGOOD:TVDROP")
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	mgr.Tracer = col
	cert := &Certifier{Tracer: col}
	mgr.Hook = cert
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	var verifySpans []trace.Span
	for _, s := range col.Spans() {
		if s.Kind == trace.KindVerify {
			verifySpans = append(verifySpans, s)
		}
	}
	if len(verifySpans) != 2 {
		t.Fatalf("got %d verify spans, want 2", len(verifySpans))
	}
	if verifySpans[1].Ref.Pass != "TVDROP" || verifySpans[1].Stats["refuted"] != 1 {
		t.Errorf("TVDROP span = %+v, want refuted=1", verifySpans[1])
	}
	if verifySpans[0].Ref.Pass != "TVGOOD" || verifySpans[0].Stats["proved"] != 1 {
		t.Errorf("TVGOOD span = %+v, want proved=1", verifySpans[0])
	}
}
