package verify

import (
	"mao/internal/cfg"
	"mao/internal/x86"
)

// The upper-32-zero analysis: a forward must-analysis computing, per
// block, the GPR families whose bits 32–63 are provably zero on block
// entry (every reaching definition was a 32-bit register write, which
// zero-extends on x86-64). REDZEXT's whole premise is this fact — it
// deletes "mov %eNN, %eNN" when the fact holds — so the symbolic
// engine must know it too: chain-entry states seed such registers as
// and(init, 0xffffffff), making the deleted self-move a no-op.

// zextFacts holds, indexed by block index, a bitmask over the 16 GPR
// families (bit i set means GPR64[i]'s upper half is zero on entry).
type zextFacts []uint16

// gprIndex returns the family index of a GPR within x86.GPR64.
func gprIndex(r x86.Reg) int {
	f := r.Family()
	for i, g := range x86.GPR64 {
		if g == f {
			return i
		}
	}
	return 0
}

// solveZext solves the forward must-problem to a fixpoint: entry
// starts empty (the ABI leaves argument upper halves undefined), the
// meet over predecessors is intersection. clear and set are the
// per-block composite transfer masks (facts' = (facts &^ clear) |
// set), so fixpoint iterations cost two mask operations per block.
func solveZext(g *cfg.Graph, clear, set []uint16) zextFacts {
	nb := len(g.Blocks)
	in := make([]uint16, nb)
	out := make([]uint16, nb)
	for i := range in {
		in[i] = ^uint16(0) // top, lowered by the first visit
		out[i] = ^uint16(0)
	}
	in[0] = 0

	changed := true
	for changed {
		changed = false
		for i, b := range g.Blocks {
			entry := in[i]
			if i != 0 {
				entry = ^uint16(0)
				if len(b.Preds) == 0 {
					entry = 0 // unreachable-from-entry: no guarantees
				}
				for _, p := range b.Preds {
					entry &= out[p.Index]
				}
			}
			facts := entry&^clear[i] | set[i]
			if entry != in[i] || facts != out[i] {
				in[i], out[i] = entry, facts
				changed = true
			}
		}
	}
	return zextFacts(in)
}
