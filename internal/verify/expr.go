// Package verify is MAO's translation-validation subsystem: it proves,
// per function, that the IR a pass produced is observationally
// equivalent to the IR the pass was given.
//
// MAOCHECK (mao/internal/check) certifies syntactic invariants — no
// new rule violations, no new live-in flags. That catches a pass that
// breaks structure, but not one that miscompiles: swapping two operands
// of a sub, dropping a mov, or retargeting a branch all sail through a
// lint gate. This package closes that hole the way Minotaur-style
// superoptimizers must: every rewrite is mechanically validated.
//
// The engine evaluates both versions of a function symbolically —
// registers, flags and memory become expressions over the unknown
// block-entry state — and requires matching end-states at every
// control-flow cut point, modulo values the data-flow layer proves
// dead. When symbolic normalization cannot decide (the expressions
// differ but may still denote the same function), it falls back to
// randomized concrete execution on mao/internal/uarch/exec and lets
// the machine vote. The same Equiv API is the oracle a future SYNTH
// rewrite-search pass calls before accepting a candidate.
package verify

import (
	"sort"
	"strconv"
	"strings"

	"mao/internal/x86"
)

// Expr is one hash-consed symbolic value. Exprs are immutable and
// interned per builder: two structurally equal expressions are the
// same pointer, so equivalence checks are pointer comparisons and
// normalization happens exactly once per distinct term.
//
// Every Expr denotes a 64-bit value; narrower operations mask through
// ordinary "and" terms, which keeps the normalizer's algebra
// width-free. Flag values are Exprs too (0/1-valued); memory is an
// Expr chain of "store" terms over an opaque initial memory.
type Expr struct {
	op   string  // operator tag, e.g. "sum", "and", "load", "init"
	c    int64   // constant payload (value, size, shift, havoc seq)
	s    string  // symbol payload (register name, label, havoc tag)
	args []*Expr // operands

	// id is the creation order within the builder — the canonical
	// ordering identity. Interning keys are built from child ids, not
	// child renderings, so constructing a node is O(arity) instead of
	// O(subtree).
	id uint32

	// base caches the address-base decomposition of sum nodes (the
	// interned constant-free term set) for the O(1) memory
	// disjointness test.
	base *Expr
}

// renderBudget caps the diagnostic rendering of one expression; deep
// store chains and shared subterms would otherwise explode the text.
const renderBudget = 4096

// Key returns the canonical rendering of the expression (capped).
// Within one builder, equal expressions are equal pointers.
func (e *Expr) Key() string { return e.String() }

// String renders the expression for diagnostics: compact,
// deterministic, stable across runs, and truncated with "…" beyond
// renderBudget bytes.
func (e *Expr) String() string {
	var sb strings.Builder
	e.render(&sb)
	return sb.String()
}

func (e *Expr) render(sb *strings.Builder) {
	if sb.Len() > renderBudget {
		sb.WriteString("…")
		return
	}
	sb.WriteString(e.op)
	if e.c != 0 || e.op == "const" {
		sb.WriteByte('#')
		sb.WriteString(strconv.FormatInt(e.c, 10))
	}
	if e.s != "" {
		sb.WriteByte('@')
		sb.WriteString(e.s)
	}
	if len(e.args) > 0 {
		sb.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				sb.WriteByte(',')
			}
			a.render(sb)
			if sb.Len() > renderBudget {
				break
			}
		}
		sb.WriteByte(')')
	}
}

// IsConst reports whether the expression is a literal constant and
// returns its value.
func (e *Expr) IsConst() (int64, bool) {
	if e.op == "const" {
		return e.c, true
	}
	return 0, false
}

// builder interns and normalizes expressions. A builder is
// single-goroutine; each function verification owns one so that the
// intern table cannot grow without bound across a corpus run.
//
// The intern table is open-addressed and hashed over the node fields
// directly (children by interned id), so constructing a node needs no
// key material and the common already-interned case allocates nothing.
type builder struct {
	table  []*Expr
	mask   uint32
	count  int
	nextID uint32
}

func newBuilder() *builder {
	return &builder{table: make([]*Expr, 512), mask: 511}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func exprHash(op string, c int64, s string, args []*Expr) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(op); i++ {
		h = (h ^ uint64(op[i])) * fnvPrime
	}
	h = (h ^ uint64(c)) * fnvPrime
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	for _, a := range args {
		h = (h ^ uint64(a.id)) * fnvPrime
	}
	return h
}

func exprEq(e *Expr, op string, c int64, s string, args []*Expr) bool {
	if e.c != c || e.op != op || e.s != s || len(e.args) != len(args) {
		return false
	}
	for i, a := range args {
		if e.args[i] != a {
			return false
		}
	}
	return true
}

// mk interns the expression (op, c, s, args). The argument slice is
// copied only when the node is new, so variadic call sites stay on the
// caller's stack for the (dominant) already-interned case.
func (b *builder) mk(op string, c int64, s string, args ...*Expr) *Expr {
	h := exprHash(op, c, s, args)
	i := uint32(h) & b.mask
	for {
		e := b.table[i]
		if e == nil {
			break
		}
		if exprEq(e, op, c, s, args) {
			return e
		}
		i = (i + 1) & b.mask
	}
	b.nextID++
	e := &Expr{op: op, c: c, s: s, id: b.nextID}
	if len(args) > 0 {
		e.args = make([]*Expr, len(args))
		copy(e.args, args)
	}
	b.table[i] = e
	b.count++
	if b.count*4 >= len(b.table)*3 {
		b.grow()
	}
	return e
}

func (b *builder) grow() {
	old := b.table
	b.table = make([]*Expr, len(old)*2)
	b.mask = uint32(len(b.table) - 1)
	for _, e := range old {
		if e == nil {
			continue
		}
		i := uint32(exprHash(e.op, e.c, e.s, e.args)) & b.mask
		for b.table[i] != nil {
			i = (i + 1) & b.mask
		}
		b.table[i] = e
	}
}

// konst returns the literal constant v.
func (b *builder) konst(v int64) *Expr { return b.mk("const", v, "") }

// initReg returns the unknown block-entry value of a register family.
func (b *builder) initReg(name string) *Expr { return b.mk("init", 0, name) }

// initFlag returns the unknown block-entry value of one flag bit.
func (b *builder) initFlag(name string) *Expr { return b.mk("initflag", 0, name) }

// symAddr returns the link-time address of a symbol. Distinct symbols
// are distinct bases for the memory disjointness test.
func (b *builder) symAddr(sym string) *Expr { return b.mk("symaddr", 0, sym) }

// havoc returns a fresh unknown, keyed by a deterministic tag and
// sequence number: two evaluations that reach the same unmodeled
// instruction in the same havoc order agree on its result.
func (b *builder) havoc(tag string, seq int64) *Expr { return b.mk("havoc", seq, tag) }

// widthMask returns the value mask of a width (0 means "64-bit", no
// masking needed).
func widthMask(w x86.Width) uint64 {
	switch w {
	case x86.W8:
		return 0xFF
	case x86.W16:
		return 0xFFFF
	case x86.W32:
		return 0xFFFFFFFF
	}
	return ^uint64(0)
}

// sum-normalization -----------------------------------------------------
//
// Additive expressions are kept flat: op "sum" with a constant payload
// and a sorted term multiset, where each term is either a plain Expr
// or a "neg" of one. This one canonical form makes lea/add/sub/inc/dec
// chains compare equal regardless of how a pass re-associated them,
// and gives the memory model its (base, offset) decomposition.

// add returns a+b in canonical sum form.
func (b *builder) add(x, y *Expr) *Expr { return b.sum(0, x, y) }

// sub returns a-b in canonical sum form.
func (b *builder) sub(x, y *Expr) *Expr { return b.sum(0, x, b.neg(y)) }

// neg returns -x.
func (b *builder) neg(x *Expr) *Expr {
	if v, ok := x.IsConst(); ok {
		return b.konst(-v)
	}
	if x.op == "neg" {
		return x.args[0]
	}
	if x.op == "sum" {
		terms := make([]*Expr, 0, len(x.args))
		for _, t := range x.args {
			terms = append(terms, b.neg(t))
		}
		return b.sum(-x.c, terms...)
	}
	return b.mk("neg", 0, "", x)
}

// sum flattens, folds constants, cancels x + (-x) pairs and sorts the
// remaining terms.
func (b *builder) sum(c int64, parts ...*Expr) *Expr {
	var terms []*Expr
	var walk func(e *Expr)
	walk = func(e *Expr) {
		if v, ok := e.IsConst(); ok {
			c += v
			return
		}
		if e.op == "sum" {
			c += e.c
			for _, t := range e.args {
				walk(t)
			}
			return
		}
		terms = append(terms, e)
	}
	for _, p := range parts {
		walk(p)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].id < terms[j].id })
	// Cancel adjacent x, neg(x) pairs (sorted order does not adjoin
	// them, so cancel by interned-pointer lookup).
	counts := make(map[*Expr]int, len(terms))
	for _, t := range terms {
		if t.op == "neg" {
			counts[t.args[0]]--
		} else {
			counts[t]++
		}
	}
	out := terms[:0]
	for _, t := range terms {
		k, pos := t, true
		if t.op == "neg" {
			k, pos = t.args[0], false
		}
		n := counts[k]
		switch {
		case n == 0:
			continue // fully canceled
		case n > 0 && !pos:
			continue // a negative absorbed by surviving positives
		case n < 0 && pos:
			continue // a positive absorbed by surviving negatives
		default:
			out = append(out, t)
			if pos {
				counts[k]--
			} else {
				counts[k]++
			}
		}
	}
	terms = out
	if len(terms) == 0 {
		return b.konst(c)
	}
	if len(terms) == 1 && c == 0 && terms[0].op != "sum" {
		return terms[0]
	}
	e := b.mk("sum", c, "", terms...)
	if e.base == nil {
		// Cache the constant-free base for address disjointness: a
		// one-term sum's base is the term itself (matching the non-sum
		// decomposition), a wider sum's base is the interned zero-
		// constant node over the same canonical terms.
		switch {
		case c == 0:
			e.base = e
		case len(terms) == 1:
			e.base = terms[0]
		default:
			e.base = b.mk("sum", 0, "", terms...)
		}
	}
	return e
}

// bitwise / multiplicative ---------------------------------------------

// commutative2 builds a commutative binary operator with constant
// folding hook fold and identity/absorber handling done by callers.
func (b *builder) commutative2(op string, x, y *Expr, fold func(a, c int64) int64) *Expr {
	xv, xc := x.IsConst()
	yv, yc := y.IsConst()
	if xc && yc {
		return b.konst(fold(xv, yv))
	}
	if y.id < x.id {
		x, y = y, x
	}
	return b.mk(op, 0, "", x, y)
}

func (b *builder) and(x, y *Expr) *Expr {
	if x == y {
		return x
	}
	if v, ok := x.IsConst(); ok && v == 0 {
		return b.konst(0)
	}
	if v, ok := y.IsConst(); ok && v == 0 {
		return b.konst(0)
	}
	if v, ok := x.IsConst(); ok && uint64(v) == ^uint64(0) {
		return y
	}
	if v, ok := y.IsConst(); ok && uint64(v) == ^uint64(0) {
		return x
	}
	// and(and(e, c1), c2) -> and(e, c1&c2): collapses repeated width
	// masking, the normalizer's hottest rewrite.
	if yv, ok := y.IsConst(); ok && x.op == "and" {
		if xv, ok2 := x.args[1].IsConst(); ok2 {
			return b.and(x.args[0], b.konst(int64(uint64(xv)&uint64(yv))))
		}
	}
	if xv, ok := x.IsConst(); ok && y.op == "and" {
		if yv, ok2 := y.args[1].IsConst(); ok2 {
			return b.and(y.args[0], b.konst(int64(uint64(xv)&uint64(yv))))
		}
	}
	// and(sum(...), m) with m a contiguous low-bit mask: addition
	// (and negation, and multiplication) mod 2^k ignores high bits of
	// its terms, so inner masks that cover m are redundant. This is
	// what makes a 32-bit add chain equal its folded form:
	// ((x&M)+1&M)+1 & M  ≡  (x+2) & M.
	if yv, ok := y.IsConst(); ok && x.op == "sum" && isLowMask(yv) {
		if stripped, changed := b.stripMaskTerms(x, uint64(yv)); changed {
			return b.and(stripped, y)
		}
	}
	if xv, ok := x.IsConst(); ok && y.op == "sum" && isLowMask(xv) {
		if stripped, changed := b.stripMaskTerms(y, uint64(xv)); changed {
			return b.and(stripped, x)
		}
	}
	e := b.commutative2("and", x, y, func(a, c int64) int64 { return a & c })
	// Canonical operand order puts a constant mask second.
	if e.op == "and" {
		if _, ok := e.args[0].IsConst(); ok {
			e = b.mk("and", 0, "", e.args[1], e.args[0])
		}
	}
	return e
}

// isLowMask reports whether v is 2^k-1 for some k ≥ 1.
func isLowMask(v int64) bool {
	u := uint64(v)
	return u != 0 && (u+1)&u == 0
}

// stripTerm removes a sum term's redundant inner mask under the outer
// low mask m, or returns (t, false).
func (b *builder) stripTerm(t *Expr, m uint64) (*Expr, bool) {
	switch t.op {
	case "and":
		if mv, ok := t.args[1].IsConst(); ok && m&^uint64(mv) == 0 {
			return t.args[0], true
		}
	case "neg":
		if inner, ok := b.stripTerm(t.args[0], m); ok {
			return b.neg(inner), true
		}
	case "mul":
		for i := 0; i < 2; i++ {
			if _, ok := t.args[1-i].IsConst(); !ok {
				continue
			}
			if inner, ok := b.stripTerm(t.args[i], m); ok {
				return b.mul(inner, t.args[1-i]), true
			}
		}
	}
	return t, false
}

// stripMaskTerms rewrites sum terms through stripTerm, reporting
// whether anything changed.
func (b *builder) stripMaskTerms(s *Expr, m uint64) (*Expr, bool) {
	terms := make([]*Expr, 0, len(s.args))
	changed := false
	for _, t := range s.args {
		nt, ch := b.stripTerm(t, m)
		changed = changed || ch
		terms = append(terms, nt)
	}
	if !changed {
		return s, false
	}
	return b.sum(s.c, terms...), true
}

func (b *builder) or(x, y *Expr) *Expr {
	if x == y {
		return x
	}
	if v, ok := x.IsConst(); ok && v == 0 {
		return y
	}
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.commutative2("or", x, y, func(a, c int64) int64 { return a | c })
}

func (b *builder) xor(x, y *Expr) *Expr {
	if x == y {
		return b.konst(0)
	}
	if v, ok := x.IsConst(); ok && v == 0 {
		return y
	}
	if v, ok := y.IsConst(); ok && v == 0 {
		return x
	}
	return b.commutative2("xor", x, y, func(a, c int64) int64 { return a ^ c })
}

func (b *builder) mul(x, y *Expr) *Expr {
	if v, ok := x.IsConst(); ok {
		if v == 0 {
			return b.konst(0)
		}
		if v == 1 {
			return y
		}
	}
	if v, ok := y.IsConst(); ok {
		if v == 0 {
			return b.konst(0)
		}
		if v == 1 {
			return x
		}
		// c * sum(c0, t...) -> sum(c*c0, c*t...): keeps scaled address
		// arithmetic (lea vs shift+add) in one canonical form.
		if x.op == "sum" {
			terms := make([]*Expr, 0, len(x.args))
			for _, t := range x.args {
				terms = append(terms, b.mul(t, y))
			}
			return b.sum(x.c*v, terms...)
		}
	}
	if v, ok := x.IsConst(); ok && y.op == "sum" {
		return b.mul(y, b.konst(v))
	}
	return b.commutative2("mul", x, y, func(a, c int64) int64 { return a * c })
}

func (b *builder) not(x *Expr) *Expr {
	if v, ok := x.IsConst(); ok {
		return b.konst(^v)
	}
	if x.op == "not" {
		return x.args[0]
	}
	return b.mk("not", 0, "", x)
}

// shifts ----------------------------------------------------------------

func (b *builder) shiftOp(op string, x, n *Expr, w x86.Width) *Expr {
	xv, xc := x.IsConst()
	nv, nc := n.IsConst()
	if nc {
		nv &= 63
		if w != x86.W64 {
			nv &= 31
		}
		if nv == 0 {
			return b.trunc(x, w)
		}
		if xc {
			bits := uint(nv)
			val := uint64(xv) & widthMask(w)
			switch op {
			case "shl":
				return b.konst(int64((val << bits) & widthMask(w)))
			case "shr":
				return b.konst(int64(val >> bits))
			case "sar":
				sw := 64 - int64(w)*8
				return b.konst(int64(uint64(int64(val<<uint(sw))>>uint(sw)>>bits) & widthMask(w)))
			}
		}
		// shl by a constant is multiplication: fold into the sum/mul
		// algebra so "shl $3" and "lea (,r,8)" normalize identically.
		if op == "shl" && w == x86.W64 && nv < 32 {
			return b.mul(x, b.konst(1<<uint(nv)))
		}
	}
	// Variable-count shift: uninterpreted, width distinguished by the
	// constant payload.
	return b.mk(op, int64(w), "", x, n)
}

// trunc masks x to width w (identity at W64).
func (b *builder) trunc(x *Expr, w x86.Width) *Expr {
	if w == x86.W64 || w == x86.W0 {
		return x
	}
	return b.and(x, b.konst(int64(widthMask(w))))
}

// sext sign-extends the w-width value x to 64 bits.
func (b *builder) sext(x *Expr, w x86.Width) *Expr {
	if w == x86.W64 || w == x86.W0 {
		return x
	}
	if v, ok := x.IsConst(); ok {
		sw := uint(64 - int(w)*8)
		return b.konst(int64(uint64(v)<<sw) >> sw)
	}
	return b.mk("sext", int64(w)*8, "", x)
}

// select is the symbolic conditional: cond ? a : b.
func (b *builder) sel(cond, a, c *Expr) *Expr {
	if a == c {
		return a
	}
	if v, ok := cond.IsConst(); ok {
		if v != 0 {
			return a
		}
		return c
	}
	return b.mk("select", 0, "", cond, a, c)
}

// memory ---------------------------------------------------------------

// mem0 is the opaque block-entry memory.
func (b *builder) mem0() *Expr { return b.mk("mem0", 0, "") }

// store appends one store to the chain, canonicalizing as it goes: a
// store shadowing an earlier same-address same-size store deletes it,
// and provably disjoint stores keep a sorted order — so a scheduler
// that reorders independent stores produces the identical chain.
func (b *builder) store(mem, addr, val *Expr, size int) *Expr {
	return b.storeChain(mem, addr, b.truncBytes(val, size), size)
}

func (b *builder) storeChain(mem, addr, val *Expr, size int) *Expr {
	if mem.op == "store" {
		pMem, pAddr, pVal := mem.args[0], mem.args[1], mem.args[2]
		pSize := int(mem.c)
		if pAddr == addr && pSize == size {
			return b.storeChain(pMem, addr, val, size) // shadowed
		}
		if disjoint(addr, int64(size), pAddr, int64(pSize)) && storeLess(addr, pAddr) {
			inner := b.storeChain(pMem, addr, val, size)
			return b.mk("store", int64(pSize), "", inner, pAddr, pVal)
		}
	}
	return b.mk("store", int64(size), "", mem, addr, val)
}

// storeLess orders two provably disjoint store addresses (same
// symbolic base) by constant offset.
func storeLess(a, p *Expr) bool {
	ab, ao := addrBase(a)
	pb, po := addrBase(p)
	if ab != pb {
		return baseID(ab) < baseID(pb)
	}
	return ao < po
}

// baseID orders address bases canonically (nil, the pure-constant
// base, first).
func baseID(e *Expr) uint32 {
	if e == nil {
		return 0
	}
	return e.id
}

// havocMem models an opaque clobber of all memory (calls, unmodeled
// stores). The prior chain stays an argument: two havocs agree only if
// their histories agree.
func (b *builder) havocMem(tag string, seq int64, mem *Expr) *Expr {
	return b.mk("memhavoc", seq, tag, mem)
}

func (b *builder) truncBytes(x *Expr, size int) *Expr {
	switch size {
	case 1:
		return b.trunc(x, x86.W8)
	case 2:
		return b.trunc(x, x86.W16)
	case 4:
		return b.trunc(x, x86.W32)
	}
	return x
}

// load reads size bytes at addr, looking through the store chain:
// exact-address same-size stores forward their value, provably
// disjoint stores are skipped, anything else stops the walk.
func (b *builder) load(mem, addr *Expr, size int) *Expr {
	m := mem
	for m.op == "store" {
		sAddr, sVal := m.args[1], m.args[2]
		sSize := int(m.c)
		if sAddr == addr && sSize == size {
			return sVal
		}
		if disjoint(addr, int64(size), sAddr, int64(sSize)) {
			m = m.args[0]
			continue
		}
		break
	}
	return b.mk("load", int64(size), "", m, addr)
}

// addrBase decomposes an address expression into (base, constant
// offset): sum#16(init@rsp) → (init@rsp, 16). Non-sum expressions are
// their own base at offset 0; pure constants have the nil base. Bases
// are interned, so "same symbolic base" is pointer equality.
func addrBase(e *Expr) (*Expr, int64) {
	if e.op == "sum" {
		return e.base, e.c
	}
	if v, ok := e.IsConst(); ok {
		return nil, v
	}
	return e, 0
}

// disjoint reports whether two accesses provably do not overlap: the
// same symbolic base with non-overlapping constant ranges.
func disjoint(a *Expr, an int64, c *Expr, cn int64) bool {
	ab, ao := addrBase(a)
	cb, co := addrBase(c)
	if ab != cb {
		return false
	}
	return ao+an <= co || co+cn <= ao
}

// flags -----------------------------------------------------------------

var flagNames = []struct {
	bit  x86.Flags
	name string
}{
	{x86.CF, "CF"}, {x86.PF, "PF"}, {x86.AF, "AF"},
	{x86.ZF, "ZF"}, {x86.SF, "SF"}, {x86.OF, "OF"},
}

// flagExpr builds the 0/1-valued expression of one flag bit produced
// by an arithmetic operator. The expressions are uninterpreted — the
// verifier never evaluates them, it only needs "same computation ⇒
// same expression", which uninterpreted terms give for free. The
// identity (flag bit, width, defined-vs-undef) packs into the constant
// payload so that no per-evaluation string is built.
func (b *builder) flagExpr(f x86.Flags, op string, w x86.Width, args ...*Expr) *Expr {
	return b.mk("flag", int64(f)<<16|int64(w), op, args...)
}

// flagUndefExpr is flagExpr for a flag an operation leaves undefined:
// a distinct unknown per (flag, operation, inputs).
func (b *builder) flagUndefExpr(f x86.Flags, op string, w x86.Width, args ...*Expr) *Expr {
	return b.mk("flag", int64(f)<<16|int64(w)|1<<8, op, args...)
}

// boolExpr wraps a 0/1 symbolic condition over flag values.
func (b *builder) condExpr(c x86.Cond, read func(x86.Flags) *Expr) *Expr {
	var args []*Expr
	for _, fn := range flagNames {
		if c.FlagsRead()&fn.bit != 0 {
			args = append(args, read(fn.bit))
		}
	}
	return b.mk("cond", int64(c), "", args...)
}
