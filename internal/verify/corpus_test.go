package verify

import (
	"path/filepath"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/pass"

	_ "mao/internal/passes" // register the built-in pass catalog
)

// The self-verification sweep: every registered built-in pass runs over
// the corpus fixtures under the certifier, at workers 1 and 8, and must
// come back with zero refutations — the verifier's false-positive gate.

// corpusFixtures mirrors the differential harness's corpus slice.
func corpusFixtures() []corpus.Workload {
	return corpus.Spec2000Int(0.05)[:3]
}

// builtinPasses returns the registered catalog minus this package's
// deliberately broken TV* mutation passes.
func builtinPasses() []string {
	var out []string
	for _, name := range pass.Names() {
		if strings.HasPrefix(name, "TV") {
			continue
		}
		out = append(out, name)
	}
	return out
}

// corpusPassOptions returns per-pass options needed to run the pass
// inertly (output passes write to the test's temp dir).
func corpusPassOptions(t *testing.T, name string) *pass.Options {
	switch name {
	case "ASM":
		return pass.NewOptions("o", filepath.Join(t.TempDir(), "out.s"))
	}
	return pass.NewOptions()
}

func TestCorpusSelfVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	for _, workers := range []int{1, 8} {
		for _, name := range builtinPasses() {
			for _, wl := range corpusFixtures() {
				t.Run(name+"/"+wl.Name+"/w"+string(rune('0'+workers)), func(t *testing.T) {
					u, err := asm.ParseString(wl.Name+".s", corpus.Generate(wl))
					if err != nil {
						t.Fatal(err)
					}
					p := pass.Lookup(name)
					if p == nil {
						t.Fatalf("pass %s vanished from the registry", name)
					}
					mgr := &pass.Manager{
						Pipeline: []pass.Invocation{{Pass: p, Opts: corpusPassOptions(t, name)}},
						Workers:  workers,
					}
					cert := &Certifier{}
					mgr.Hook = cert
					if _, err := mgr.Run(u); err != nil {
						t.Fatalf("pipeline: %v", err)
					}
					for _, v := range cert.Violations {
						t.Errorf("false positive: %v", v)
					}
					for _, inv := range cert.Invocations {
						t.Logf("%s[%d]: %v", inv.Pass, inv.Index, inv.Result.Counts())
						for _, fr := range inv.Result.Funcs {
							if fr.Status == StatusInconclusive {
								t.Logf("inconclusive: %s (%s)", fr.Func, fr.Note)
							}
						}
					}
				})
			}
		}
	}
}
