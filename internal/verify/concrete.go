package verify

import (
	"fmt"
	"math/rand"

	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/uarch/exec"
	"mao/internal/x86"
)

// The concrete fallback: when symbolic normalization cannot decide,
// both versions of the function run on the functional executor under
// identical randomized inputs, and the architectural end-states must
// agree. The comparison follows the differential-semantics harness:
// code pointers compare as "both text addresses" (layout moves them),
// the stack window and the final flags are dead at return, and every
// address the before-version stored must hold an equivalent value.

type concreteVerdict int

const (
	concreteAgree concreteVerdict = iota
	concreteDisagree
	concreteUnknown
)

const stackWindow = exec.StackTop - 0x100000

func isStackAddr(a uint64) bool { return a >= stackWindow && a <= exec.StackTop }

// isTextAddr reports whether v lies in the executor's text mapping.
func isTextAddr(v uint64) bool { return v >= exec.TextBase && v < exec.DataBase }

func equivalentValue(a, c uint64) bool {
	return a == c || (isTextAddr(a) && isTextAddr(c))
}

// concreteRun is one execution's comparable outcome.
type concreteRun struct {
	state    *exec.State
	stores   map[uint64]int // non-stack stored addr -> widest access
	executed int64
}

func runConcrete(u *ir.Unit, layout *relax.Layout, entry string, regs map[x86.Reg]uint64, maxInsts int64) (*concreteRun, error) {
	r := &concreteRun{stores: make(map[uint64]int)}
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: entry,
		MaxInsts:      maxInsts,
		InitRegs:      regs,
		ExternalCalls: true,
		OnEvent: func(ev exec.Event) {
			if ev.HasStore && !isStackAddr(ev.StoreAddr) {
				if ev.AccessLen > r.stores[ev.StoreAddr] {
					r.stores[ev.StoreAddr] = ev.AccessLen
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	r.state = res.State
	r.executed = res.Executed
	return r, nil
}

// randRegs draws one randomized input assignment for the integer
// argument registers: a mix of small scalars and valid data-section
// pointers, so functions that index, loop, and dereference all get
// exercised.
func randRegs(rng *rand.Rand) map[x86.Reg]uint64 {
	regs := make(map[x86.Reg]uint64, 7)
	for _, r := range []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9} {
		switch rng.Intn(3) {
		case 0:
			regs[r] = uint64(rng.Intn(17))
		case 1:
			regs[r] = uint64(rng.Intn(1 << 20))
		default:
			regs[r] = uint64(exec.DataBase) + uint64(rng.Intn(0x2000))&^7
		}
	}
	regs[x86.RAX] = uint64(rng.Intn(9))
	return regs
}

// concreteEquiv executes fn in both units under Options.ConcreteRuns
// randomized inputs. Runs where both sides fault identically are
// uninformative; a run where exactly one side faults, or the end
// states diverge, refutes. All-uninformative comes back unknown.
func concreteEquiv(ub, ua *ir.Unit, fn string, o Options) (concreteVerdict, *Mismatch) {
	if ub.FindLabel(fn) == nil || ua.FindLabel(fn) == nil {
		return concreteUnknown, nil
	}
	lb, err := relax.Relax(ub, nil)
	if err != nil {
		return concreteUnknown, nil
	}
	la, err := relax.Relax(ua, nil)
	if err != nil {
		return concreteUnknown, nil
	}

	informative := 0
	for run := 0; run < o.ConcreteRuns; run++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(run)*0x9e3779b9))
		regs := randRegs(rng)

		rb, errB := runConcrete(ub, lb, fn, regs, o.MaxInsts)
		ra, errA := runConcrete(ua, la, fn, regs, o.MaxInsts)
		switch {
		case errB != nil && errA != nil:
			continue // both faulted: this input decides nothing
		case errB != nil || errA != nil:
			be, ae := "completed", "completed"
			if errB != nil {
				be = errB.Error()
			}
			if errA != nil {
				ae = errA.Error()
			}
			return concreteDisagree, &Mismatch{Func: fn,
				What:   fmt.Sprintf("concrete execution (run %d)", run),
				Before: be, After: ae}
		}
		informative++
		if mm := compareConcrete(fn, run, rb, ra); mm != nil {
			return concreteDisagree, mm
		}
	}
	if informative == 0 {
		return concreteUnknown, nil
	}
	return concreteAgree, nil
}

// compareConcrete diffs two completed runs' architectural end-states.
func compareConcrete(fn string, run int, rb, ra *concreteRun) *Mismatch {
	for i := 0; i < 16; i++ {
		if !equivalentValue(rb.state.GPR[i], ra.state.GPR[i]) {
			return &Mismatch{Func: fn,
				What:   fmt.Sprintf("concrete reg %s (run %d)", x86.GPR64[i], run),
				Before: fmt.Sprintf("%#x", rb.state.GPR[i]),
				After:  fmt.Sprintf("%#x", ra.state.GPR[i])}
		}
		if rb.state.XMM[i] != ra.state.XMM[i] {
			return &Mismatch{Func: fn,
				What:   fmt.Sprintf("concrete reg xmm%d (run %d)", i, run),
				Before: fmt.Sprintf("%#x", rb.state.XMM[i]),
				After:  fmt.Sprintf("%#x", ra.state.XMM[i])}
		}
	}
	// Every address the before-version stored must hold an equivalent
	// value after (the after-version may store to additional addresses
	// — instrumentation counters — without refuting).
	for addr, width := range rb.stores {
		vb := rb.state.ReadMem(addr, width)
		va := ra.state.ReadMem(addr, width)
		if !equivalentValue(vb, va) {
			return &Mismatch{Func: fn,
				What:   fmt.Sprintf("concrete mem[%#x]/%d (run %d)", addr, width, run),
				Before: fmt.Sprintf("%#x", vb), After: fmt.Sprintf("%#x", va)}
		}
	}
	return nil
}
