package verify

import (
	"strconv"

	"mao/internal/x86"
	"mao/internal/x86/sidefx"
)

// stepInst evaluates one non-control-flow instruction into the state.
// Control transfers (jmp/jcc/ret) are block terminators the driver
// interprets; calls are ordinary steps that havoc the caller-saved
// state and append an observable call event.
//
// The modeled subset mirrors the symbolic core the paper's passes
// touch: moves, lea, ALU with flag effects, push/pop, setcc/cmovcc and
// the sign-extension idioms. Everything else — and every instruction
// missing from the side-effect tables — falls through to havocInst,
// which clobbers exactly what sidefx.InstEffects says it writes, with
// deterministic fresh values: two evaluations of the same instruction
// sequence agree on every havoc, so unmodeled code still proves equal
// to itself.
func (s *state) stepInst(in *x86.Inst) {
	b := s.b
	w := in.Width
	if w == x86.W0 {
		w = x86.W64
	}

	switch in.Op {
	case x86.OpNOP, x86.OpPAUSE, x86.OpUD2, x86.OpHLT,
		x86.OpPREFETCHNTA, x86.OpPREFETCHT0, x86.OpPREFETCHT1, x86.OpPREFETCHT2:
		return

	case x86.OpMOV, x86.OpMOVABS:
		if in.Op == x86.OpMOV && len(in.Args) == 2 {
			s.writeOperand(&in.Args[1], s.readOperand(&in.Args[0], w), w)
			return
		}
		if len(in.Args) == 2 {
			s.writeOperand(&in.Args[1], s.readOperand(&in.Args[0], x86.W64), x86.W64)
			return
		}

	case x86.OpMOVZX:
		if len(in.Args) == 2 {
			v := s.readOperand(&in.Args[0], in.SrcWidth) // already masked to SrcWidth
			s.writeOperand(&in.Args[1], v, w)
			return
		}

	case x86.OpMOVSX:
		if len(in.Args) == 2 {
			v := b.sext(s.readOperand(&in.Args[0], in.SrcWidth), in.SrcWidth)
			s.writeOperand(&in.Args[1], v, w)
			return
		}

	case x86.OpLEA:
		if len(in.Args) == 2 && in.Args[0].Kind == x86.KindMem {
			s.writeOperand(&in.Args[1], b.trunc(s.addrExpr(in.Args[0].Mem), w), w)
			return
		}

	case x86.OpPUSH:
		if len(in.Args) == 1 {
			size := int64(w)
			v := s.readOperand(&in.Args[0], w)
			sp := b.sub(s.reg(x86.RSP), b.konst(size))
			s.writeReg(x86.RSP, sp)
			s.mem = b.store(s.mem, sp, v, int(size))
			return
		}

	case x86.OpPOP:
		if len(in.Args) == 1 {
			size := int64(w)
			sp := s.reg(x86.RSP)
			v := b.load(s.mem, sp, int(size))
			s.writeReg(x86.RSP, b.add(sp, b.konst(size)))
			s.writeOperand(&in.Args[0], v, w)
			return
		}

	case x86.OpLEAVE:
		bp := s.reg(x86.RBP)
		s.writeReg(x86.RBP, b.load(s.mem, bp, 8))
		s.writeReg(x86.RSP, b.add(bp, b.konst(8)))
		return

	case x86.OpXCHG:
		if len(in.Args) == 2 {
			va := s.readOperand(&in.Args[0], w)
			vb := s.readOperand(&in.Args[1], w)
			s.writeOperand(&in.Args[0], vb, w)
			s.writeOperand(&in.Args[1], va, w)
			return
		}

	case x86.OpADD, x86.OpADC, x86.OpSUB, x86.OpSBB, x86.OpCMP:
		if len(in.Args) == 2 {
			src := s.readOperand(&in.Args[0], w)
			dst := s.readOperand(&in.Args[1], w)
			s.alu2(in.Op, &in.Args[1], dst, src, w)
			return
		}

	case x86.OpAND, x86.OpOR, x86.OpXOR, x86.OpTEST:
		if len(in.Args) == 2 {
			src := s.readOperand(&in.Args[0], w)
			dst := s.readOperand(&in.Args[1], w)
			var res *Expr
			switch in.Op {
			case x86.OpAND, x86.OpTEST:
				res = b.and(dst, src)
			case x86.OpOR:
				res = b.or(dst, src)
			case x86.OpXOR:
				res = b.xor(dst, src)
			}
			res = b.trunc(res, w)
			if in.Op != x86.OpTEST {
				s.writeOperand(&in.Args[1], res, w)
			}
			// Logic ops clear CF/OF, set ZF/SF/PF from the result and
			// leave AF undefined.
			s.setFlag(x86.CF, b.konst(0))
			s.setFlag(x86.OF, b.konst(0))
			s.resultFlags(res, w)
			s.undefFlag(x86.AF, "logic", w, dst, src)
			return
		}

	case x86.OpINC, x86.OpDEC:
		if len(in.Args) == 1 {
			a := s.readOperand(&in.Args[0], w)
			one := b.konst(1)
			var res *Expr
			tag := "add"
			if in.Op == x86.OpDEC {
				res = b.trunc(b.sub(a, one), w)
				tag = "sub"
			} else {
				res = b.trunc(b.add(a, one), w)
			}
			s.writeOperand(&in.Args[0], res, w)
			// inc/dec preserve CF.
			s.resultFlags(res, w)
			s.setFlag(x86.OF, s.opFlag(x86.OF, tag, w, a, one))
			s.setFlag(x86.AF, s.opFlag(x86.AF, tag, w, a, one))
			return
		}

	case x86.OpNEG:
		if len(in.Args) == 1 {
			a := s.readOperand(&in.Args[0], w)
			res := b.trunc(b.neg(a), w)
			s.writeOperand(&in.Args[0], res, w)
			s.subFlags(b.konst(0), a, res, w)
			return
		}

	case x86.OpNOT:
		if len(in.Args) == 1 {
			a := s.readOperand(&in.Args[0], w)
			s.writeOperand(&in.Args[0], b.trunc(b.not(a), w), w)
			return // not touches no flags
		}

	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		s.shift(in, w)
		return

	case x86.OpIMUL:
		switch len(in.Args) {
		case 2: // imul src, dst
			src := s.readOperand(&in.Args[0], w)
			dst := s.readOperand(&in.Args[1], w)
			s.imulFlags(src, dst, w)
			s.writeOperand(&in.Args[1], b.trunc(b.mul(dst, src), w), w)
			return
		case 3: // imul $imm, src, dst
			imm := s.readOperand(&in.Args[0], w)
			src := s.readOperand(&in.Args[1], w)
			s.imulFlags(imm, src, w)
			s.writeOperand(&in.Args[2], b.trunc(b.mul(src, imm), w), w)
			return
		case 1:
			s.mulWide(in, w, true)
			return
		}

	case x86.OpMUL:
		if len(in.Args) == 1 {
			s.mulWide(in, w, false)
			return
		}

	case x86.OpIDIV, x86.OpDIV:
		if len(in.Args) == 1 {
			s.divide(in, w)
			return
		}

	case x86.OpSET:
		if len(in.Args) == 1 {
			s.writeOperand(&in.Args[0], s.condValue(in.Cond), x86.W8)
			return
		}

	case x86.OpCMOV:
		if len(in.Args) == 2 {
			src := s.readOperand(&in.Args[0], w)
			dst := s.readOperand(&in.Args[1], w)
			// cmov writes its destination register unconditionally (the
			// 32-bit form zero-extends even on a false condition).
			s.writeOperand(&in.Args[1], b.sel(s.condValue(in.Cond), src, dst), w)
			return
		}

	case x86.OpCLTQ: // rax = sext32(eax)
		s.writeReg(x86.RAX, b.sext(b.trunc(s.reg(x86.RAX), x86.W32), x86.W32))
		return
	case x86.OpCWTL: // eax = sext16(ax)
		s.writeReg(x86.EAX, b.sext(b.trunc(s.reg(x86.RAX), x86.W16), x86.W16))
		return
	case x86.OpCLTD: // edx = sign-fill of eax
		sgn := b.shiftOp("sar", b.sext(b.trunc(s.reg(x86.RAX), x86.W32), x86.W32), b.konst(63), x86.W64)
		s.writeReg(x86.EDX, sgn)
		return
	case x86.OpCQTO: // rdx = sign-fill of rax
		s.writeReg(x86.RDX, b.shiftOp("sar", s.reg(x86.RAX), b.konst(63), x86.W64))
		return

	case x86.OpCALL:
		s.call(in)
		return
	}

	if in.Op.IsSSE() {
		s.sse(in)
		return
	}

	s.havocInst(in)
}

// alu2 implements the two-operand add/adc/sub/sbb/cmp family.
func (s *state) alu2(op x86.Op, dst *x86.Operand, a, c *Expr, w x86.Width) {
	b := s.b
	var res *Expr
	switch op {
	case x86.OpADD:
		res = b.trunc(b.add(a, c), w)
		s.addFlags(a, c, res, w)
	case x86.OpADC:
		cf := s.flag(x86.CF)
		res = b.trunc(b.add(b.add(a, c), cf), w)
		s.resultFlags(res, w)
		s.setFlag(x86.CF, s.opFlag(x86.CF, "adc", w, a, c, cf))
		s.setFlag(x86.OF, s.opFlag(x86.OF, "adc", w, a, c, cf))
		s.setFlag(x86.AF, s.opFlag(x86.AF, "adc", w, a, c, cf))
	case x86.OpSUB, x86.OpCMP:
		res = b.trunc(b.sub(a, c), w)
		s.subFlags(a, c, res, w)
	case x86.OpSBB:
		cf := s.flag(x86.CF)
		res = b.trunc(b.sub(b.sub(a, c), cf), w)
		s.resultFlags(res, w)
		s.setFlag(x86.CF, s.opFlag(x86.CF, "sbb", w, a, c, cf))
		s.setFlag(x86.OF, s.opFlag(x86.OF, "sbb", w, a, c, cf))
		s.setFlag(x86.AF, s.opFlag(x86.AF, "sbb", w, a, c, cf))
	}
	if op != x86.OpCMP {
		s.writeOperand(dst, res, w)
	}
}

// resultFlags sets ZF/SF/PF, which are pure functions of the masked
// result — so "test %rax,%rax" and "cmp $0,%rax" agree on ZF and SF.
func (s *state) resultFlags(res *Expr, w x86.Width) {
	b := s.b
	if v, ok := res.IsConst(); ok {
		masked := uint64(v) & widthMask(w)
		s.setFlag(x86.ZF, boolConst(b, masked == 0))
		s.setFlag(x86.SF, boolConst(b, masked>>(uint(w)*8-1)&1 == 1))
		s.setFlag(x86.PF, boolConst(b, evenParity(byte(masked))))
		return
	}
	s.setFlag(x86.ZF, b.flagExpr(x86.ZF, "res", w, res))
	s.setFlag(x86.SF, b.flagExpr(x86.SF, "res", w, res))
	s.setFlag(x86.PF, b.flagExpr(x86.PF, "res", w, res))
}

func boolConst(b *builder, v bool) *Expr {
	if v {
		return b.konst(1)
	}
	return b.konst(0)
}

func evenParity(x byte) bool {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n%2 == 0
}

// addFlags sets the full flag state of an add. Carry-ish bits are kept
// as uninterpreted functions of the (commutatively sorted) operands;
// constant operands fold.
func (s *state) addFlags(a, c, res *Expr, w x86.Width) {
	s.resultFlags(res, w)
	if c.id < a.id {
		a, c = c, a
	}
	s.setFlag(x86.CF, s.opFlag(x86.CF, "add", w, a, c))
	s.setFlag(x86.OF, s.opFlag(x86.OF, "add", w, a, c))
	s.setFlag(x86.AF, s.opFlag(x86.AF, "add", w, a, c))
}

// subFlags sets the full flag state of a sub/cmp/neg (a - c).
func (s *state) subFlags(a, c, res *Expr, w x86.Width) {
	s.resultFlags(res, w)
	s.setFlag(x86.CF, s.opFlag(x86.CF, "sub", w, a, c))
	s.setFlag(x86.OF, s.opFlag(x86.OF, "sub", w, a, c))
	s.setFlag(x86.AF, s.opFlag(x86.AF, "sub", w, a, c))
}

// opFlag builds one carry-family flag bit, constant-folding CF/OF of
// add/sub when both operands are literal.
func (s *state) opFlag(f x86.Flags, op string, w x86.Width, args ...*Expr) *Expr {
	b := s.b
	if len(args) == 2 {
		av, aok := args[0].IsConst()
		cv, cok := args[1].IsConst()
		if aok && cok && (op == "add" || op == "sub") {
			ua := uint64(av) & widthMask(w)
			uc := uint64(cv) & widthMask(w)
			bits := uint(w) * 8
			switch {
			case f == x86.CF && op == "add":
				return boolConst(b, (ua+uc)>>bits != 0 || (w == x86.W64 && ua+uc < ua))
			case f == x86.CF && op == "sub":
				return boolConst(b, ua < uc)
			case f == x86.OF && op == "add":
				r := (ua + uc) & widthMask(w)
				return boolConst(b, (ua^r)&(uc^r)>>(bits-1)&1 == 1)
			case f == x86.OF && op == "sub":
				r := (ua - uc) & widthMask(w)
				return boolConst(b, (ua^uc)&(ua^r)>>(bits-1)&1 == 1)
			}
		}
	}
	return b.flagExpr(f, op, w, args...)
}

// undefFlag models an architecturally undefined flag as a
// deterministic function of the instruction's inputs and the flag's
// prior value. This is stricter than hardware (which may produce
// anything) but congruent: identical code yields identical junk, and
// a pass has no business depending on undefined bits either way.
func (s *state) undefFlag(f x86.Flags, op string, w x86.Width, args ...*Expr) {
	all := append(append([]*Expr(nil), args...), s.flag(f))
	s.setFlag(f, s.b.flagUndefExpr(f, op, w, all...))
}

// shift implements the const- and variable-count shift/rotate family.
func (s *state) shift(in *x86.Inst, w x86.Width) {
	b := s.b
	op := in.Op.String()
	var cntOp, dstOp *x86.Operand
	switch len(in.Args) {
	case 1: // "shlq %rax" shifts by one
		cntOp = &x86.Operand{Kind: x86.KindImm, Imm: 1}
		dstOp = &in.Args[0]
	case 2:
		cntOp = &in.Args[0]
		dstOp = &in.Args[1]
	default:
		s.havocInst(in)
		return
	}
	a := s.readOperand(dstOp, w)
	if cntOp.Kind == x86.KindImm {
		mask := int64(63)
		if w != x86.W64 {
			mask = 31
		}
		n := cntOp.Imm & mask
		if n == 0 {
			return // zero count: no result change, no flag change
		}
		cnt := b.konst(n)
		res := s.shiftResult(op, a, cnt, w)
		s.writeOperand(dstOp, res, w)
		if op == "rol" || op == "ror" {
			// Rotates set only CF (and OF for count 1).
			s.setFlag(x86.CF, s.opFlag(x86.CF, op, w, a, cnt))
			if n == 1 {
				s.setFlag(x86.OF, s.opFlag(x86.OF, op, w, a, cnt))
			} else {
				s.undefFlag(x86.OF, op, w, a, cnt)
			}
			return
		}
		s.resultFlags(res, w)
		s.setFlag(x86.CF, s.opFlag(x86.CF, op, w, a, cnt))
		if n == 1 {
			s.setFlag(x86.OF, s.opFlag(x86.OF, op, w, a, cnt))
		} else {
			s.undefFlag(x86.OF, op, w, a, cnt)
		}
		s.undefFlag(x86.AF, op, w, a, cnt)
		return
	}
	// Variable count: the result is a deterministic shift expression;
	// every flag is undefined (a zero count would preserve them all),
	// so each becomes a function of operands plus its prior value.
	cnt := s.readOperand(cntOp, x86.W8)
	res := s.shiftResult(op, a, cnt, w)
	s.writeOperand(dstOp, res, w)
	for _, fn := range flagNames {
		s.undefFlag(fn.bit, op+"v", w, a, cnt)
	}
}

func (s *state) shiftResult(op string, a, cnt *Expr, w x86.Width) *Expr {
	b := s.b
	switch op {
	case "shl", "shr":
		return b.trunc(b.shiftOp(op, b.trunc(a, w), cnt, w), w)
	case "sar":
		return b.trunc(b.shiftOp("sar", b.sext(b.trunc(a, w), w), cnt, x86.W64), w)
	}
	// Rotates stay fully uninterpreted.
	return b.trunc(b.mk(op+"."+strconv.Itoa(int(w)), 0, "", b.trunc(a, w), cnt), w)
}

// imulFlags models the two/three-operand imul flag state: CF/OF are
// defined (overflow of the truncated product), the rest undefined.
func (s *state) imulFlags(a, c *Expr, w x86.Width) {
	if c.id < a.id {
		a, c = c, a
	}
	s.setFlag(x86.CF, s.opFlag(x86.CF, "imul", w, a, c))
	s.setFlag(x86.OF, s.opFlag(x86.OF, "imul", w, a, c))
	s.undefFlag(x86.ZF, "imul", w, a, c)
	s.undefFlag(x86.SF, "imul", w, a, c)
	s.undefFlag(x86.PF, "imul", w, a, c)
	s.undefFlag(x86.AF, "imul", w, a, c)
}

// mulWide implements one-operand mul/imul: the double-width product
// lands in rdx:rax (ax for byte multiplies).
func (s *state) mulWide(in *x86.Inst, w x86.Width, signed bool) {
	b := s.b
	src := s.readOperand(&in.Args[0], w)
	acc := b.trunc(s.reg(x86.RAX), w)
	sign := "u"
	lo, hiA, hiB := acc, acc, src
	if signed {
		sign = "s"
		lo = b.sext(acc, w)
		hiA, hiB = b.sext(acc, w), b.sext(src, w)
		src = b.sext(src, w)
	}
	// The low half of the product is exact multiplication; the high
	// half stays an uninterpreted (commutatively sorted) function.
	prod := b.mul(lo, src)
	if hiB.id < hiA.id {
		hiA, hiB = hiB, hiA
	}
	hi := b.mk("mulhi."+sign+"."+strconv.Itoa(int(w)), 0, "", hiA, hiB)
	if w == x86.W8 {
		// imulb: the 16-bit product lands in AX.
		s.writeReg(x86.AX, b.trunc(prod, x86.W16))
	} else {
		s.writeReg(x86.RAX.WithWidth(w), prod)
		s.writeReg(x86.RDX.WithWidth(w), hi)
	}
	s.setFlag(x86.CF, s.opFlag(x86.CF, "mulw."+sign, w, hiA, hiB))
	s.setFlag(x86.OF, s.opFlag(x86.OF, "mulw."+sign, w, hiA, hiB))
	s.undefFlag(x86.ZF, "mulw", w, hiA, hiB)
	s.undefFlag(x86.SF, "mulw", w, hiA, hiB)
	s.undefFlag(x86.PF, "mulw", w, hiA, hiB)
	s.undefFlag(x86.AF, "mulw", w, hiA, hiB)
}

// divide implements one-operand div/idiv as uninterpreted quotient and
// remainder functions of (high, low, divisor).
func (s *state) divide(in *x86.Inst, w x86.Width) {
	b := s.b
	src := s.readOperand(&in.Args[0], w)
	sign := "u"
	if in.Op == x86.OpIDIV {
		sign = "s"
	}
	ws := strconv.Itoa(int(w))
	var hi, lo *Expr
	if w == x86.W8 {
		// divb divides AX by the operand; quotient to AL, remainder AH.
		ax := b.trunc(s.reg(x86.RAX), x86.W16)
		q := b.mk("div.q."+sign+"."+ws, 0, "", ax, src)
		r := b.mk("div.r."+sign+"."+ws, 0, "", ax, src)
		s.writeReg(x86.AX, b.or(b.trunc(q, x86.W8), b.shiftOp("shl", b.trunc(r, x86.W8), b.konst(8), x86.W64)))
	} else {
		hi = b.trunc(s.reg(x86.RDX), w)
		lo = b.trunc(s.reg(x86.RAX), w)
		q := b.mk("div.q."+sign+"."+ws, 0, "", hi, lo, src)
		r := b.mk("div.r."+sign+"."+ws, 0, "", hi, lo, src)
		s.writeReg(x86.RAX.WithWidth(w), b.trunc(q, w))
		s.writeReg(x86.RDX.WithWidth(w), b.trunc(r, w))
	}
	for _, fn := range flagNames {
		if hi != nil {
			s.undefFlag(fn.bit, "div", w, hi, lo, src)
		} else {
			s.undefFlag(fn.bit, "div", w, src)
		}
	}
}

// condValue builds the 0/1 value of a condition code over the current
// flag state. Complementary codes over identical flags normalize to
// expr and not(expr), so a pass that negates a branch and swaps its
// arms still proves equal.
func (s *state) condValue(c x86.Cond) *Expr {
	base := c &^ 1
	e := s.b.condExpr(base, s.flag)
	if c&1 == 1 {
		return s.b.xor(e, s.b.konst(1))
	}
	return e
}

// sseMemSize returns the memory footprint of an SSE move/op operand.
func sseMemSize(op x86.Op) int {
	switch op {
	case x86.OpMOVSS, x86.OpADDSS, x86.OpSUBSS, x86.OpMULSS, x86.OpDIVSS,
		x86.OpSQRTSS, x86.OpUCOMISS, x86.OpCOMISS, x86.OpMOVD,
		x86.OpCVTSI2SS, x86.OpCVTTSS2SI, x86.OpCVTSS2SD:
		return 4
	case x86.OpMOVAPS, x86.OpMOVUPS, x86.OpMOVDQA, x86.OpMOVDQU,
		x86.OpXORPS, x86.OpXORPD, x86.OpANDPS, x86.OpANDPD, x86.OpPXOR:
		return 16
	}
	return 8
}

// sse evaluates the scalar-SSE subset: moves become loads/stores or
// register copies, arithmetic becomes uninterpreted functions over the
// operand lanes, compares set real flag bits.
func (s *state) sse(in *x86.Inst) {
	b := s.b
	size := sseMemSize(in.Op)
	readLane := func(a x86.Operand) *Expr {
		if a.Kind == x86.KindMem {
			return b.load(s.mem, s.addrExpr(a.Mem), size)
		}
		if a.Kind == x86.KindReg && a.Reg.IsGPR() {
			return s.readReg(a.Reg)
		}
		return s.reg(a.Reg)
	}
	writeLane := func(a x86.Operand, v *Expr) {
		if a.Kind == x86.KindMem {
			s.mem = b.store(s.mem, s.addrExpr(a.Mem), v, size)
			return
		}
		if a.Kind == x86.KindReg && a.Reg.IsGPR() {
			w := a.Reg.Width()
			s.writeReg(a.Reg, b.trunc(v, w))
			return
		}
		s.regs[famIdx(a.Reg.Family())] = v
	}
	if len(in.Args) != 2 {
		s.havocInst(in)
		return
	}
	src, dst := in.Args[0], in.Args[1]

	switch in.Op {
	case x86.OpMOVAPS, x86.OpMOVUPS, x86.OpMOVDQA, x86.OpMOVDQU,
		x86.OpMOVD, x86.OpMOVQX:
		writeLane(dst, readLane(src))
		return
	case x86.OpMOVSS, x86.OpMOVSD:
		v := readLane(src)
		if src.Kind == x86.KindReg && dst.Kind == x86.KindReg {
			// Register-to-register scalar moves merge into the low lane.
			v = b.mk("sse.merge."+in.Op.String(), 0, "", v, readLane(dst))
		}
		writeLane(dst, v)
		return
	case x86.OpXORPS, x86.OpXORPD, x86.OpPXOR:
		if src.Kind == x86.KindReg && dst.Kind == x86.KindReg && src.Reg == dst.Reg {
			writeLane(dst, b.konst(0)) // the canonical zero idiom
			return
		}
		writeLane(dst, b.xor(readLane(dst), readLane(src)))
		return
	case x86.OpUCOMISS, x86.OpUCOMISD, x86.OpCOMISS, x86.OpCOMISD:
		a, c := readLane(dst), readLane(src)
		op := in.Op.String()
		s.setFlag(x86.ZF, b.flagExpr(x86.ZF, op, x86.W64, a, c))
		s.setFlag(x86.PF, b.flagExpr(x86.PF, op, x86.W64, a, c))
		s.setFlag(x86.CF, b.flagExpr(x86.CF, op, x86.W64, a, c))
		s.setFlag(x86.OF, b.konst(0))
		s.setFlag(x86.SF, b.konst(0))
		s.setFlag(x86.AF, b.konst(0))
		return
	}
	// Remaining SSE arithmetic/conversion: dst = f(op, src, dst).
	writeLane(dst, b.mk("sse."+in.Op.String(), 0, "", readLane(src), readLane(dst)))
}

// call models a call instruction: the event is observable (target,
// argument registers, memory), the caller-saved state is freshened
// deterministically by call position, callee-saved registers and RSP
// survive.
func (s *state) call(in *x86.Inst) {
	b := s.b
	target := "<indirect>"
	if t, ok := in.BranchTarget(); ok {
		target = t
	} else if len(in.Args) == 1 {
		target = "*" + s.readOperand(&in.Args[0], x86.W64).String()
	}
	ev := callEvent{target: target, mem: s.mem}
	for _, r := range abiArgRegs {
		ev.args = append(ev.args, s.reg(r))
	}
	seq := int64(len(s.calls))
	s.calls = append(s.calls, ev)

	tag := "call." + target
	for _, r := range callerSaved {
		s.havocReg(r, tag, seq)
	}
	s.havocFlags(x86.AllFlags, tag, seq)
	s.mem = b.havocMem(tag, seq, s.mem)
}

// havocInst clobbers exactly what the side-effect tables say an
// unmodeled instruction writes, with fresh values keyed by the
// instruction's text and a per-block sequence number — deterministic
// across the two sides as long as the unmodeled code is unchanged.
func (s *state) havocInst(in *x86.Inst) {
	eff := sidefx.InstEffects(in)
	tag := "op." + in.String()
	seq := s.nextHavoc()
	if eff.Barrier {
		for _, r := range x86.GPR64 {
			s.havocReg(r, tag, seq)
		}
		for f := x86.XMM0; f <= x86.XMM15; f++ {
			s.havocReg(f, tag, seq)
		}
		s.havocFlags(x86.AllFlags, tag, seq)
		s.mem = s.b.havocMem(tag, seq, s.mem)
		return
	}
	for _, r := range eff.RegsWritten {
		if r == x86.RFLAGS {
			s.havocFlags(x86.AllFlags, tag, seq)
			continue
		}
		s.havocReg(r, tag, seq)
	}
	s.havocFlags(eff.FlagsSet|eff.FlagsUndef, tag, seq)
	if eff.MemWrite {
		s.mem = s.b.havocMem(tag, seq, s.mem)
	}
}
