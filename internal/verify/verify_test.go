package verify

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
)

// parseUnit wraps body in a minimal .text function f.
func parseUnit(t *testing.T, body string) *ir.Unit {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

// symOnly runs Equiv with the concrete fallback disabled, so the test
// probes exactly what the symbolic engine can prove.
func symOnly(t *testing.T, before, after string) *Result {
	t.Helper()
	ub := parseUnit(t, before)
	ua := parseUnit(t, after)
	return Equiv(ub, ua, &Options{SkipConcrete: true})
}

func onlyFunc(t *testing.T, r *Result) FuncResult {
	t.Helper()
	if len(r.Funcs) != 1 {
		t.Fatalf("got %d function results, want 1: %+v", len(r.Funcs), r.Funcs)
	}
	return r.Funcs[0]
}

// TestSymbolicProves is the catalog of transformations the symbolic
// engine must prove without falling back to execution — one entry per
// rewrite family the built-in passes perform.
func TestSymbolicProves(t *testing.T) {
	cases := []struct {
		name          string
		before, after string
	}{
		{"identical",
			"\tmovl $1, %eax\n\tret\n",
			"\tmovl $1, %eax\n\tret\n"},
		{"redundant-test-vs-cmp", // REDTEST: sub already set the flags
			"\tsubl $16, %edi\n\ttestl %edi, %edi\n\tjne .L1\n\tmovl $1, %eax\n.L1:\n\tret\n",
			"\tsubl $16, %edi\n\tjne .L1\n\tmovl $1, %eax\n.L1:\n\tret\n"},
		{"test-equals-cmp-zero",
			"\ttestl %edi, %edi\n\tje .L1\n\tmovl $1, %eax\n.L1:\n\tret\n",
			"\tcmpl $0, %edi\n\tje .L1\n\tmovl $1, %eax\n.L1:\n\tret\n"},
		{"add-add-fold", // ADDADD: consecutive immediates merge
			"\taddq $8, %rax\n\taddq $16, %rax\n\tret\n",
			"\taddq $24, %rax\n\tret\n"},
		{"sub-as-negative-add",
			"\tsubq $8, %rax\n\tret\n",
			"\taddq $-8, %rax\n\tret\n"},
		{"constfold", // CONSTFOLD: mov-imm + arith -> mov-imm
			"\tmovl $6, %eax\n\taddl $7, %eax\n\tret\n",
			"\tmovl $13, %eax\n\tret\n"},
		{"redundant-zext", // REDZEXT: 32-bit def already zero-extends
			"\tmovl %edi, %eax\n\tmovl %eax, %eax\n\tret\n",
			"\tmovl %edi, %eax\n\tret\n"},
		{"redundant-mov", // REDMOV: load forwarding
			"\tmovq %rdi, %rax\n\tmovq %rax, %rdx\n\tret\n",
			"\tmovq %rdi, %rax\n\tmovq %rdi, %rdx\n\tret\n"},
		{"nop-insertion", // NOPIN / BRALIGN padding
			"\tmovl $1, %eax\n\tret\n",
			"\tnop\n\tmovl $1, %eax\n\tnop\n\tret\n"},
		{"prefetch-insertion", // PREFNTA
			"\tmovq (%rdi), %rax\n\tret\n",
			"\tprefetchnta 64(%rdi)\n\tmovq (%rdi), %rax\n\tret\n"},
		{"sched-independent-alu", // SCHED: reorder independent ops
			"\taddq $1, %rax\n\taddq $2, %rdx\n\tret\n",
			"\taddq $2, %rdx\n\taddq $1, %rax\n\tret\n"},
		{"sched-disjoint-stores",
			"\tmovl $1, (%rdi)\n\tmovl $2, 8(%rdi)\n\tret\n",
			"\tmovl $2, 8(%rdi)\n\tmovl $1, (%rdi)\n\tret\n"},
		{"store-forwarded-load",
			"\tmovq %rsi, (%rdi)\n\tmovq (%rdi), %rax\n\tret\n",
			"\tmovq %rsi, (%rdi)\n\tmovq %rsi, %rax\n\tret\n"},
		{"shadowed-store",
			"\tmovq $1, (%rdi)\n\tmovq %rsi, (%rdi)\n\tret\n",
			"\tmovq %rsi, (%rdi)\n\tret\n"},
		{"lea-vs-add-dead-flags",
			"\taddq $4, %rax\n\tret\n",
			"\tleaq 4(%rax), %rax\n\tret\n"},
		{"shl-vs-mul",
			"\tshlq $3, %rax\n\tret\n",
			"\timulq $8, %rax, %rax\n\tret\n"},
		{"xor-zero-idiom",
			"\tmovl $0, %eax\n\tret\n",
			"\txorl %eax, %eax\n\tret\n"},
		{"negated-branch-swapped-arms",
			"\tcmpl $0, %edi\n\tje .LZ\n\tmovl $1, %eax\n\tret\n.LZ:\n\tmovl $2, %eax\n\tret\n",
			"\tcmpl $0, %edi\n\tjne .LNZ\n\tmovl $2, %eax\n\tret\n.LNZ:\n\tmovl $1, %eax\n\tret\n"},
		{"block-split-fresh-label",
			"\tmovl $1, %eax\n\taddl $2, %eax\n\tret\n",
			"\tmovl $1, %eax\n.Lsplit:\n\taddl $2, %eax\n\tret\n"},
		{"explicit-jmp-vs-fallthrough",
			"\tcmpl $0, %edi\n\tje .LA\n\tmovl $1, %eax\n.LA:\n\tret\n",
			"\tcmpl $0, %edi\n\tje .LA\n\tmovl $1, %eax\n\tjmp .LA\n.LA:\n\tret\n"},
		{"push-pop-save-restore",
			"\tmovl $7, %eax\n\tret\n",
			"\tpushq %rbx\n\tmovl $7, %eax\n\tpopq %rbx\n\tret\n"},
		{"dead-stack-spill",
			"\tmovl $7, %eax\n\tret\n",
			"\tmovq %rdi, -8(%rsp)\n\tmovl $7, %eax\n\tret\n"},
		{"loop-no-unrolling", // fresh per-block states handle back edges
			".LT:\n\tsubl $1, %edi\n\tjne .LT\n\tret\n",
			".LT:\n\tsubl $1, %edi\n\tjne .LT\n\tret\n"},
		{"loop-body-rewrite",
			".LT:\n\taddl $1, %eax\n\taddl $1, %eax\n\tsubl $1, %edi\n\tjne .LT\n\tret\n",
			".LT:\n\taddl $2, %eax\n\tsubl $1, %edi\n\tjne .LT\n\tret\n"},
		{"call-preserving-rewrite",
			"\tmovl $3, %edi\n\tcall g\n\taddq $1, %rax\n\taddq $1, %rax\n\tret\n",
			"\tmovl $3, %edi\n\tcall g\n\taddq $2, %rax\n\tret\n"},
		{"dead-code-after-jmp", // DCE: unreachable block removed
			"\tmovl $1, %eax\n\tjmp .LE\n\tmovl $9, %eax\n.LE:\n\tret\n",
			"\tmovl $1, %eax\n\tjmp .LE\n.LE:\n\tret\n"},
		{"alignment-directives", // LOOP16/BRALIGN: directives don't execute
			"\tmovl $1, %eax\n\tret\n",
			"\t.p2align 4\n\tmovl $1, %eax\n\tret\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := onlyFunc(t, symOnly(t, tc.before, tc.after))
			if fr.Status != StatusProved {
				t.Errorf("status = %s (note: %s), want proved", fr.Status, fr.Note)
			}
		})
	}
}

// TestConcreteRefutes is the catalog of genuine miscompiles: the
// pipeline must end at StatusRefuted with a populated counterexample.
func TestConcreteRefutes(t *testing.T) {
	cases := []struct {
		name          string
		before, after string
		wantWhat      string // substring of the counterexample's What
	}{
		{"wrong-constant",
			"\tmovl $1, %eax\n\tret\n",
			"\tmovl $2, %eax\n\tret\n",
			"rax"},
		{"dropped-instruction",
			"\tmovq %rdi, %rax\n\taddq %rsi, %rax\n\tret\n",
			"\tmovq %rdi, %rax\n\tret\n",
			"rax"},
		{"swapped-operands",
			"\tmovq %rdi, %rax\n\tsubq %rsi, %rax\n\tret\n",
			"\tmovq %rsi, %rax\n\tsubq %rdi, %rax\n\tret\n",
			"rax"},
		{"clobbered-callee-save",
			"\tmovl $1, %eax\n\tret\n",
			"\tmovq $5, %rbx\n\tmovl $1, %eax\n\tret\n",
			"rbx"},
		{"corrupted-store",
			"\tmovl $1, (%rdi)\n\tret\n",
			"\tmovl $9, (%rdi)\n\tret\n",
			"mem"},
		{"wrong-branch-sense",
			"\tcmpq $3, %rdi\n\tje .LA\n\tmovl $1, %eax\n\tret\n.LA:\n\tmovl $2, %eax\n\tret\n",
			"\tcmpq $3, %rdi\n\tjne .LA\n\tmovl $1, %eax\n\tret\n.LA:\n\tmovl $2, %eax\n\tret\n",
			"rax"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ub := parseUnit(t, tc.before)
			ua := parseUnit(t, tc.after)
			fr := onlyFunc(t, Equiv(ub, ua, nil))
			if fr.Status != StatusRefuted {
				t.Fatalf("status = %s (note: %s), want refuted", fr.Status, fr.Note)
			}
			if fr.Mismatch == nil {
				t.Fatal("refuted without a counterexample")
			}
			if !strings.Contains(fr.Mismatch.What, tc.wantWhat) {
				t.Errorf("counterexample %q does not mention %q", fr.Mismatch, tc.wantWhat)
			}
		})
	}
}

// TestConcreteFallbackAgrees: rewrites beyond the symbolic engine's
// normalization must settle at StatusConcrete, not refute.
func TestConcreteFallbackAgrees(t *testing.T) {
	cases := []struct {
		name          string
		before, after string
	}{
		// mulhi is uninterpreted symbolically, and the two encodings
		// place operands differently.
		{"mul-strength",
			"\tmovq %rdi, %rax\n\timulq $3, %rax, %rax\n\tret\n",
			"\tmovq %rdi, %rax\n\tleaq (%rax,%rax,2), %rax\n\tret\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ub := parseUnit(t, tc.before)
			ua := parseUnit(t, tc.after)
			fr := onlyFunc(t, Equiv(ub, ua, nil))
			if fr.Status != StatusConcrete && fr.Status != StatusProved {
				t.Errorf("status = %s (note: %s; mismatch: %v), want concrete/proved",
					fr.Status, fr.Note, fr.Mismatch)
			}
		})
	}
}

// TestEquivMissingFunction: a pass deleting a whole function refutes.
func TestEquivMissingFunction(t *testing.T) {
	ub := parseUnit(t, "\tret\n")
	ua, err := asm.ParseString("t.s", "\t.text\n")
	if err != nil {
		t.Fatal(err)
	}
	r := Equiv(ub, ua, &Options{SkipConcrete: true})
	fr := onlyFunc(t, r)
	if fr.Status != StatusRefuted || fr.Mismatch == nil || fr.Mismatch.What != "function" {
		t.Errorf("got %+v, want function-missing refutation", fr)
	}
	if r.Clean() {
		t.Error("Clean() on a refuted result")
	}
}

// TestSymbolicNeverRefutes: with the fallback disabled, a symbolic
// mismatch must come back inconclusive — never refuted — because
// normalization incompleteness is not a counterexample.
func TestSymbolicNeverRefutes(t *testing.T) {
	fr := onlyFunc(t, symOnly(t,
		"\tmovq %rdi, %rax\n\timulq $3, %rax, %rax\n\tret\n",
		"\tmovq %rdi, %rax\n\tleaq (%rax,%rax,2), %rax\n\tret\n"))
	if fr.Status != StatusInconclusive {
		t.Errorf("status = %s, want inconclusive", fr.Status)
	}
}

// TestResultCounts exercises the aggregate helpers.
func TestResultCounts(t *testing.T) {
	r := &Result{Funcs: []FuncResult{
		{Func: "a", Status: StatusProved},
		{Func: "b", Status: StatusProved},
		{Func: "c", Status: StatusRefuted},
	}}
	c := r.Counts()
	if c[StatusProved] != 2 || c[StatusRefuted] != 1 {
		t.Errorf("Counts() = %v", c)
	}
	if r.Clean() {
		t.Error("Clean() with a refutation")
	}
	if got := r.Refuted(); len(got) != 1 || got[0].Func != "c" {
		t.Errorf("Refuted() = %v", got)
	}
}
