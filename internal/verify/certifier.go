package verify

import (
	"encoding/json"
	"fmt"
	"time"

	"mao/internal/check"
	"mao/internal/ir"
	"mao/internal/trace"
)

// InvocationResult is one pass invocation's verification outcome.
type InvocationResult struct {
	Pass   string        `json:"pass"`
	Index  int           `json:"index"`
	Result *Result       `json:"result"`
	Dur    time.Duration `json:"dur_ns"`
}

// Certifier is a pass.Hook that translation-validates every pass
// invocation of a pipeline: before each pass it snapshots the unit
// (a deep Clone, so the snapshot is independent of the live IR),
// after the pass it proves the live unit observationally equivalent
// to the snapshot with Equiv. A refutation is attributed to the
// offending invocation as NAME[idx] with a structured counterexample
// diagnostic.
//
// Wire it into a pipeline with:
//
//	mgr, _ := pass.NewManager("REDTEST:SCHED")
//	cert := &verify.Certifier{}
//	mgr.Hook = cert
//	stats, err := mgr.Run(u)
//	// cert.Violations lists every refutation, pass by pass.
//
// It composes with check.Certifier through pass.Hooks.
type Certifier struct {
	// Options configures the equivalence check (zero value = defaults).
	Options Options

	// FailFast makes AfterPass return an error on the first refutation,
	// aborting the pipeline with the failure attributed to the
	// offending invocation. Without it the pipeline runs to completion
	// and Violations accumulates.
	FailFast bool

	// Skip names passes exempt from validation (user-registered passes
	// with intentional semantic changes). BeforePass still snapshots so
	// the next validated pass diffs against the right baseline.
	Skip map[string]bool

	// Tracer, when non-nil, receives one KindVerify span per validated
	// invocation.
	Tracer *trace.Collector

	// SpanParent is the collector index the KindVerify spans parent
	// under. The default 0 is the pipeline root when the collector is
	// private to one manager run; embedders that add spans before the
	// run (maod's queue/batch spans) point it at the shifted root.
	SpanParent int

	// Violations collects every refutation, in pipeline order. The
	// Diag's Msg carries the human-readable counterexample; its
	// machine-readable form is in Invocations.
	Violations []check.Violation

	// Invocations records every validated invocation's full verdict,
	// in pipeline order.
	Invocations []InvocationResult

	snapshot    *ir.Unit // pre-pass deep clone of the unit
	snapErr     error
	snapOf      *ir.Unit // live unit the snapshot was taken from
	snapVersion int64    // live unit's List.Version at snapshot time
}

// takeSnapshot clones u as the next validation baseline, recording the
// live unit's list version so an unchanged unit can reuse it.
func (c *Certifier) takeSnapshot(u *ir.Unit) {
	c.snapshot, c.snapErr = u.Clone()
	c.snapOf, c.snapVersion = u, u.List.Version()
}

// BeforePass snapshots the unit. When the previous AfterPass already
// cloned this unit and nothing has mutated it since (same list
// version), the clone is reused — one snapshot per pass.
func (c *Certifier) BeforePass(u *ir.Unit, name string, index int) error {
	if c.snapshot != nil && c.snapOf == u && c.snapVersion == u.List.Version() {
		return nil
	}
	c.takeSnapshot(u)
	return nil
}

// AfterPass proves the post-pass unit equivalent to the snapshot and
// attributes any refutation to the invocation that just ran. The live
// unit serves as the after side directly — Equiv only reads it.
func (c *Certifier) AfterPass(u *ir.Unit, name string, index int) error {
	if c.Skip[name] {
		c.takeSnapshot(u)
		return nil
	}
	if c.snapErr != nil || c.snapshot == nil {
		// No baseline (the pre-pass unit would not re-analyze): record
		// the failure against this invocation and restart from here.
		err := c.snapErr
		c.takeSnapshot(u)
		return c.record(u, name, index, nil, 0, err)
	}
	before := c.snapshot

	start := c.Tracer.Now()
	t0 := time.Now()
	res := Equiv(before, u, &c.Options)
	dur := time.Since(t0)

	if c.Tracer.Enabled() {
		counts := res.Counts()
		stats := make(map[string]int, len(counts))
		for st, n := range counts {
			stats[string(st)] = n
		}
		c.Tracer.Add(trace.Span{
			Kind:   trace.KindVerify,
			Ref:    trace.Ref{Pass: name, Index: index},
			Start:  start,
			Dur:    dur,
			Stats:  stats,
			Parent: c.SpanParent,
		})
	}

	// The post-pass clone is the next pass's baseline: one clone per
	// pass.
	c.takeSnapshot(u)
	return c.record(u, name, index, res, dur, nil)
}

// record appends the invocation verdict and any refutations, honoring
// FailFast.
func (c *Certifier) record(u *ir.Unit, name string, index int, res *Result, dur time.Duration, parseErr error) error {
	before := len(c.Violations)
	if parseErr != nil {
		c.Violations = append(c.Violations, check.Violation{
			Pass: name, Index: index,
			Diag: check.Diag{
				Rule:     "verify-parse",
				Severity: check.SevError,
				File:     u.FileName,
				Msg:      fmt.Sprintf("pre-pass unit could not be snapshotted: %v", parseErr),
			},
		})
	}
	if res != nil {
		c.Invocations = append(c.Invocations, InvocationResult{
			Pass: name, Index: index, Result: res, Dur: dur,
		})
		for _, fr := range res.Funcs {
			if fr.Status != StatusRefuted {
				continue
			}
			msg := fmt.Sprintf("not observationally equivalent: %s", fr.Mismatch)
			if cx, err := json.Marshal(fr.Mismatch); err == nil {
				msg += " counterexample=" + string(cx)
			}
			c.Violations = append(c.Violations, check.Violation{
				Pass: name, Index: index,
				Diag: check.Diag{
					Rule:     "verify-equiv",
					Severity: check.SevError,
					File:     u.FileName,
					Func:     fr.Func,
					Msg:      msg,
				},
			})
		}
	}
	if c.FailFast && len(c.Violations) > before {
		v := c.Violations[before]
		return fmt.Errorf("verification failed (%d refutations): %s",
			len(c.Violations)-before, v.Diag)
	}
	return nil
}
