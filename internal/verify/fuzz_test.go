package verify

import (
	"strings"
	"testing"

	"mao/internal/asm"
)

// FuzzVerifyEquiv is the zero-false-positive fuzz gate: for any
// parseable input, the verifier must never refute a byte-identical
// copy, nor a copy differing only by inserted nops (the one edit whose
// neutrality is known without an oracle). Refuting either would be a
// verifier bug by construction, whatever the input program does.
func FuzzVerifyEquiv(f *testing.F) {
	f.Add("\tmovl $1, %eax\n\tret\n", uint8(0))
	f.Add("f:\n\ttestl %edi, %edi\n\tjne f\n\tret\n", uint8(3))
	f.Add("g:\n\tpushq %rbx\n\tmovq %rdi, %rbx\n\taddq $2, %rbx\n\tmovq %rbx, %rax\n\tpopq %rbx\n\tret\n", uint8(7))
	f.Add("h:\n\tmovq %rsi, (%rdi)\n\tmovq (%rdi), %rax\n\tcall ext\n\tret\n", uint8(1))
	f.Add("k:\n\tcmpq $3, %rdi\n\tje k2\n\tshlq $2, %rax\n\tret\nk2:\n\timull $3, %esi, %eax\n\tret\n", uint8(5))

	f.Fuzz(func(t *testing.T, src string, edit uint8) {
		if len(src) > 4096 {
			return
		}
		before, err := asm.ParseString("fuzz.s", src)
		if err != nil {
			return
		}
		// Byte-level edit: insert a nop line at a line boundary chosen
		// by the selector (0 = no edit, byte-identical copy).
		after := src
		if edit != 0 {
			lines := strings.SplitAfter(src, "\n")
			at := int(edit) % (len(lines) + 1)
			var sb strings.Builder
			for i, l := range lines {
				if i == at {
					sb.WriteString("\tnop\n")
				}
				sb.WriteString(l)
			}
			if at == len(lines) {
				sb.WriteString("\tnop\n")
			}
			after = sb.String()
		}
		ua, err := asm.ParseString("fuzz.s", after)
		if err != nil {
			return
		}
		r := Equiv(before, ua, &Options{ConcreteRuns: 2, MaxInsts: 50_000})
		for _, fr := range r.Funcs {
			if fr.Status == StatusRefuted {
				t.Fatalf("refuted a neutral edit: %s: %v\nsource:\n%s\nedited:\n%s",
					fr.Func, fr.Mismatch, src, after)
			}
		}
	})
}
