// Package mbench is the micro-architectural parameter-detection
// framework of paper Section IV. Building an accurate model of a
// modern processor is impractical and the manuals are incomplete, so
// parameters are discovered by experiment: generate a microbenchmark
// from constraints, run it in isolation on the target, read the PMU,
// infer the parameter.
//
// The paper implements the framework as Python classes (Processor,
// Instruction, InstructionSequence, Loop, Benchmark); this package
// provides the same abstractions in Go. Execution targets the
// simulated processors of mao/internal/uarch — and because every
// simulator parameter is explicit, the framework's inferences can be
// checked against ground truth, closing the discovery loop the paper
// envisions.
package mbench

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"mao/internal/asm"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/sim"
	"mao/internal/x86"
)

// Counter names a PMU counter the framework can collect.
type Counter string

// Counters the simulated PMU exposes.
const (
	CPU_CYCLES   Counter = "CPU_CYCLES"
	INST_RETIRED Counter = "INST_RETIRED"
	DECODE_LINES Counter = "DECODE_LINES"
	LSD_UOPS     Counter = "LSD_UOPS"
	BR_MISP      Counter = "BR_MISP"
	RS_FULL      Counter = "RESOURCE_STALLS:RS_FULL"
)

// Processor encapsulates a target architecture: its register set and
// the machine model benchmarks execute on (paper IV.a).
type Processor struct {
	Name  string
	Model *uarch.CPUModel
	// Regs are the general-purpose registers microbenchmarks may
	// allocate (a subset keeps rsp/rbp and the frameworks' own
	// counters out of generated code).
	Regs []x86.Reg
}

// NewProcessor wraps a machine model as a benchmark target.
func NewProcessor(model *uarch.CPUModel) *Processor {
	return &Processor{
		Name:  model.Name,
		Model: model,
		Regs: []x86.Reg{
			x86.RAX, x86.RBX, x86.RDX, x86.RSI, x86.RDI,
			x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14,
		},
	}
}

// DagType selects the dependence structure of a generated sequence
// (paper IV.c).
type DagType int

// Dependence graph types.
const (
	// CHAIN: each instruction has a RAW dependence on the previous.
	CHAIN DagType = iota
	// CYCLE: a CHAIN whose first instruction depends on the last —
	// across loop iterations this fully serializes execution.
	CYCLE
	// RANDOM: arbitrary dependencies between instructions.
	RANDOM
	// DISJOINT: each instruction independent of the others.
	DISJOINT
)

// InstructionSequence generates an acyclic instruction sequence from a
// candidate template and a dependence type (paper IV.c). Operands are
// drawn randomly from the processor's valid register set.
type InstructionSequence struct {
	proc     *Processor
	template string
	dag      DagType
	count    int
	seed     uint64

	insts []string // rendered AT&T lines
}

// NewInstructionSequence returns an empty sequence for the processor.
func NewInstructionSequence(proc *Processor) *InstructionSequence {
	return &InstructionSequence{proc: proc, count: 8, seed: 1}
}

// SetInstructionTemplate sets the candidate template. Placeholders:
// %r a register read, %w the written register (destination), %i a
// small immediate. AT&T operand order (sources first). Examples:
//
//	"addl %r, %w"        two-operand ALU
//	"imull %r, %w"       integer multiply
//	"movl %i, %w"        immediate load
func (s *InstructionSequence) SetInstructionTemplate(t string) { s.template = t }

// SetDagType sets the dependence structure.
func (s *InstructionSequence) SetDagType(d DagType) { s.dag = d }

// SetLength sets the number of instructions (default 8).
func (s *InstructionSequence) SetLength(n int) { s.count = n }

// SetSeed makes generation repeatable under a chosen seed.
func (s *InstructionSequence) SetSeed(seed uint64) { s.seed = seed }

// Len returns the number of generated instructions.
func (s *InstructionSequence) Len() int { return len(s.insts) }

// Generate materializes the sequence under the configured constraints.
func (s *InstructionSequence) Generate() error {
	if s.template == "" {
		return fmt.Errorf("mbench: no instruction template set")
	}
	rng := rand.New(rand.NewPCG(s.seed, s.seed^0xabcdef))
	regs := s.proc.Regs
	fresh := func(exclude x86.Reg) x86.Reg {
		for {
			r := regs[rng.IntN(len(regs))]
			if r != exclude {
				return r
			}
		}
	}

	s.insts = nil
	// dests[i] is the register written by instruction i.
	var dests []x86.Reg
	var lastDest x86.Reg
	first := true
	for i := 0; i < s.count; i++ {
		var src, dst x86.Reg
		switch s.dag {
		case CHAIN:
			dst = fresh(x86.RegNone)
			if first {
				src = fresh(dst)
			} else {
				src = lastDest
			}
		case CYCLE:
			// One register threads the whole chain; the loop's back
			// edge closes the cycle.
			if first {
				dst = fresh(x86.RegNone)
			} else {
				dst = lastDest
			}
			src = dst
		case RANDOM:
			dst = fresh(x86.RegNone)
			if len(dests) > 0 && rng.IntN(2) == 0 {
				src = dests[rng.IntN(len(dests))]
			} else {
				src = fresh(dst)
			}
		case DISJOINT:
			// Each instruction reads and writes its own register.
			dst = regs[i%len(regs)]
			src = dst
		}
		line, err := s.render(rng, src, dst)
		if err != nil {
			return err
		}
		s.insts = append(s.insts, line)
		dests = append(dests, dst)
		lastDest = dst
		first = false
	}
	return nil
}

// render substitutes template placeholders. The written register takes
// the last %w (or the last %r when no %w appears, matching AT&T's
// source-first order).
func (s *InstructionSequence) render(rng *rand.Rand, src, dst x86.Reg) (string, error) {
	t := s.template
	width := x86.W32
	if m, ok := x86.ParseMnemonic(strings.Fields(t)[0]); ok && m.Width != 0 {
		width = m.Width
	}
	regName := func(r x86.Reg) string { return r.WithWidth(width).ATT() }

	// Substitute placeholders in a single left-to-right scan so that
	// substituted register names (which themselves contain "%r...")
	// are never rescanned. Without an explicit %w, the LAST %r is the
	// destination (AT&T source-first order).
	lastR := strings.LastIndex(t, "%r")
	hasW := strings.Contains(t, "%w")
	var out strings.Builder
	for i := 0; i < len(t); {
		switch {
		case strings.HasPrefix(t[i:], "%w"):
			out.WriteString(regName(dst))
			i += 2
		case strings.HasPrefix(t[i:], "%r"):
			if !hasW && i == lastR {
				out.WriteString(regName(dst))
			} else {
				out.WriteString(regName(src))
			}
			i += 2
		case strings.HasPrefix(t[i:], "%i"):
			fmt.Fprintf(&out, "$%d", 1+rng.IntN(100))
			i += 2
		default:
			out.WriteByte(t[i])
			i++
		}
	}
	return "\t" + strings.TrimSpace(out.String()), nil
}

// Loop is the common interface of loop shapes (paper IV.d).
type Loop interface {
	// Emit renders the loop body into b with the given unique id.
	Emit(b *strings.Builder, id int)
	// DynamicInstructions returns the instructions executed by one
	// full run of the loop.
	DynamicInstructions() int64
}

// StraightLineLoop wraps instruction sequences in a loop with a fixed
// trip count and no internal control flow (paper IV.d).
type StraightLineLoop struct {
	Seqs  []*InstructionSequence
	Trips int
}

// NewStraightLineLoop builds a loop over the sequences (default 10000
// trips).
func NewStraightLineLoop(seqs []*InstructionSequence, _ *Processor) *StraightLineLoop {
	return &StraightLineLoop{Seqs: seqs, Trips: 10000}
}

// Emit renders the loop.
func (l *StraightLineLoop) Emit(b *strings.Builder, id int) {
	fmt.Fprintf(b, "\tmovl $%d, %%r15d\n", l.Trips)
	fmt.Fprintf(b, "\t.p2align 5\n.Lmb_loop%d:\n", id)
	for _, s := range l.Seqs {
		for _, line := range s.insts {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(b, "\tdecl %%r15d\n\tjne .Lmb_loop%d\n", id)
}

// DynamicInstructions counts the loop's executed instructions.
func (l *StraightLineLoop) DynamicInstructions() int64 {
	body := 0
	for _, s := range l.Seqs {
		body += s.Len()
	}
	return int64(l.Trips) * int64(body+2) // +2 for decl/jne
}

// BodyInstructions counts one iteration's sequence instructions
// (excluding loop overhead) — the denominator of the latency case
// study.
func (l *StraightLineLoop) BodyInstructions() int64 {
	body := 0
	for _, s := range l.Seqs {
		body += s.Len()
	}
	return int64(l.Trips) * int64(body)
}

// LoopList aggregates the loops of one benchmark (paper IV.d).
type LoopList struct{ Loops []Loop }

// NewLoopList wraps loops.
func NewLoopList(loops []Loop) *LoopList { return &LoopList{Loops: loops} }

// NumDynamicInstructions sums executed instructions over all loops.
func (ll *LoopList) NumDynamicInstructions() int64 {
	var total int64
	for _, l := range ll.Loops {
		total += l.DynamicInstructions()
	}
	return total
}

// Benchmark assembles a program from loops, executes it in isolation
// on the target processor, and collects PMU counters (paper IV.e).
type Benchmark struct {
	loops *LoopList
}

// NewBenchmark wraps a loop list.
func NewBenchmark(loops *LoopList) *Benchmark { return &Benchmark{loops: loops} }

// Source renders the benchmark's assembly program.
func (b *Benchmark) Source() string {
	var sb strings.Builder
	sb.WriteString("\t.text\n\t.type mb_main,@function\nmb_main:\n")
	sb.WriteString("\tpush %rbx\n\tpush %r12\n\tpush %r13\n\tpush %r14\n\tpush %r15\n")
	// Seed every benchmark register with a small value so arithmetic
	// stays well-defined.
	for i, r := range []x86.Reg{x86.RAX, x86.RBX, x86.RDX, x86.RSI, x86.RDI,
		x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13, x86.R14} {
		fmt.Fprintf(&sb, "\tmovq $%d, %s\n", i+1, r.ATT())
	}
	for i, l := range b.loops.Loops {
		l.Emit(&sb, i)
	}
	sb.WriteString("\tpop %r15\n\tpop %r14\n\tpop %r13\n\tpop %r12\n\tpop %rbx\n\tret\n")
	sb.WriteString("\t.size mb_main,.-mb_main\n")
	return sb.String()
}

// runSource assembles, executes and simulates one probe program with
// entry mb_main, returning the raw simulator counters. The discovery
// probes use it for hand-shaped layouts the sequence generator cannot
// express.
func runSource(proc *Processor, src string) (*sim.Counters, error) {
	u, err := asm.ParseString("probe.s", src)
	if err != nil {
		return nil, err
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, err
	}
	s := sim.New(proc.Model)
	if _, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: "mb_main",
		MaxInsts: 20_000_000,
		OnEvent:  func(ev exec.Event) { s.Feed(ev) },
	}); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// Execute runs the benchmark in isolation on the processor and
// returns the requested counters.
func (b *Benchmark) Execute(proc *Processor, counters []Counter) (map[Counter]uint64, error) {
	u, err := asm.ParseString("mbench.s", b.Source())
	if err != nil {
		return nil, err
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, err
	}
	s := sim.New(proc.Model)
	if _, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: "mb_main",
		MaxInsts: 20_000_000,
		OnEvent:  func(ev exec.Event) { s.Feed(ev) },
	}); err != nil {
		return nil, err
	}
	c := s.Finish()
	out := make(map[Counter]uint64, len(counters))
	for _, name := range counters {
		switch name {
		case CPU_CYCLES:
			out[name] = c.Cycles
		case INST_RETIRED:
			out[name] = c.Insts
		case DECODE_LINES:
			out[name] = c.DecodeLines
		case LSD_UOPS:
			out[name] = c.LSDUops
		case BR_MISP:
			out[name] = c.Mispredicts
		case RS_FULL:
			out[name] = c.RSFullStalls
		default:
			return nil, fmt.Errorf("mbench: unknown counter %q", name)
		}
	}
	return out, nil
}
