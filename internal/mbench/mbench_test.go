package mbench

import (
	"strings"
	"testing"

	"mao/internal/uarch"
)

func core2() *Processor   { return NewProcessor(uarch.Core2()) }
func opteron() *Processor { return NewProcessor(uarch.Opteron()) }

// TestInstructionLatency closes the discovery loop of the paper's
// Figure 6 case study: the measured latency of each template must
// equal the latency configured into the simulated processor.
func TestInstructionLatency(t *testing.T) {
	proc := core2()
	cases := []struct {
		template string
		want     int
	}{
		{"addl %r, %w", 1},
		{"subl %r, %w", 1},
		{"xorl %r, %w", 1},
		{"imull %r, %w", 3},
		{"addq %r, %w", 1},
	}
	for _, c := range cases {
		got, err := InstructionLatency(proc, c.template)
		if err != nil {
			t.Fatalf("InstructionLatency(%q): %v", c.template, err)
		}
		if got != c.want {
			t.Errorf("latency(%q) = %d, want %d", c.template, got, c.want)
		}
	}
}

func TestSequenceGeneration(t *testing.T) {
	proc := core2()
	seq := NewInstructionSequence(proc)
	seq.SetInstructionTemplate("addl %r, %w")
	seq.SetDagType(CHAIN)
	seq.SetLength(10)
	if err := seq.Generate(); err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 10 {
		t.Fatalf("generated %d instructions, want 10", seq.Len())
	}
	// CHAIN: every instruction's source must be the previous
	// destination.
	for i := 1; i < len(seq.insts); i++ {
		prev := strings.Fields(strings.ReplaceAll(seq.insts[i-1], ",", ""))
		cur := strings.Fields(strings.ReplaceAll(seq.insts[i], ",", ""))
		prevDst := prev[len(prev)-1]
		curSrc := cur[1]
		if prevDst != curSrc {
			t.Errorf("chain broken at %d: %q then %q", i, seq.insts[i-1], seq.insts[i])
		}
	}
}

func TestSequenceDeterminism(t *testing.T) {
	proc := core2()
	gen := func(seed uint64) []string {
		seq := NewInstructionSequence(proc)
		seq.SetInstructionTemplate("addl %i, %w")
		seq.SetDagType(RANDOM)
		seq.SetSeed(seed)
		if err := seq.Generate(); err != nil {
			t.Fatal(err)
		}
		return seq.insts
	}
	a, b := gen(7), gen(7)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Error("same seed must generate identical sequences")
	}
	c := gen(8)
	if strings.Join(a, ";") == strings.Join(c, ";") {
		t.Error("different seeds should differ")
	}
}

func TestDisjointFasterThanCycle(t *testing.T) {
	proc := core2()
	run := func(dag DagType) uint64 {
		seq := NewInstructionSequence(proc)
		seq.SetInstructionTemplate("addl %r, %w")
		seq.SetDagType(dag)
		seq.SetLength(12)
		if err := seq.Generate(); err != nil {
			t.Fatal(err)
		}
		loop := NewStraightLineLoop([]*InstructionSequence{seq}, proc)
		loop.Trips = 3000
		res, err := NewBenchmark(NewLoopList([]Loop{loop})).Execute(proc, []Counter{CPU_CYCLES})
		if err != nil {
			t.Fatal(err)
		}
		return res[CPU_CYCLES]
	}
	cycle, disjoint := run(CYCLE), run(DISJOINT)
	if disjoint*2 > cycle {
		t.Errorf("disjoint (%d cycles) must be much faster than cycle (%d)", disjoint, cycle)
	}
}

func TestExecuteCounters(t *testing.T) {
	proc := core2()
	seq := NewInstructionSequence(proc)
	seq.SetInstructionTemplate("addl %r, %w")
	seq.SetDagType(DISJOINT)
	if err := seq.Generate(); err != nil {
		t.Fatal(err)
	}
	loop := NewStraightLineLoop([]*InstructionSequence{seq}, proc)
	loop.Trips = 100
	bench := NewBenchmark(NewLoopList([]Loop{loop}))
	res, err := bench.Execute(proc, []Counter{CPU_CYCLES, INST_RETIRED, BR_MISP})
	if err != nil {
		t.Fatal(err)
	}
	if res[CPU_CYCLES] == 0 || res[INST_RETIRED] == 0 {
		t.Errorf("counters empty: %v", res)
	}
	if _, err := bench.Execute(proc, []Counter{"NO_SUCH_COUNTER"}); err == nil {
		t.Error("unknown counter accepted")
	}
}

// TestDetectLSDWindow rediscovers the LSD's configured 4-line budget
// on the Core-2 model and its absence on the Opteron model.
func TestDetectLSDWindow(t *testing.T) {
	got, err := DetectLSDWindow(core2())
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("Core-2 LSD window = %d lines, want 4", got)
	}
	got, err = DetectLSDWindow(opteron())
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Opteron LSD window = %d, want 0 (no LSD)", got)
	}
}

// TestDetectBranchAliasGranularity rediscovers the predictor's
// 32-byte (PC>>5) indexing on the Core-2 model.
func TestDetectBranchAliasGranularity(t *testing.T) {
	got, err := DetectBranchAliasGranularity(core2())
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("alias granularity = %d, want 32 (PC>>5)", got)
	}
}

// TestDetectForwardingBandwidth rediscovers the configured forwarding
// limits (2 on Core-2, 3 on Opteron).
func TestDetectForwardingBandwidth(t *testing.T) {
	got, err := DetectForwardingBandwidth(core2())
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("Core-2 forwarding bandwidth = %d, want 2", got)
	}
	got, err = DetectForwardingBandwidth(opteron())
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("Opteron forwarding bandwidth = %d, want 3", got)
	}
}

func TestDetectSustainedIPC(t *testing.T) {
	got, err := DetectSustainedIPC(core2())
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("Core-2 sustained IPC = %d, want 3 (three ALU ports)", got)
	}
}

func TestBenchmarkSourceParses(t *testing.T) {
	proc := core2()
	seq := NewInstructionSequence(proc)
	seq.SetInstructionTemplate("imull %r, %w")
	seq.SetDagType(CHAIN)
	if err := seq.Generate(); err != nil {
		t.Fatal(err)
	}
	b := NewBenchmark(NewLoopList([]Loop{NewStraightLineLoop([]*InstructionSequence{seq}, proc)}))
	src := b.Source()
	for _, want := range []string{"mb_main:", ".Lmb_loop0:", "imull"} {
		if !strings.Contains(src, want) {
			t.Errorf("benchmark source missing %q:\n%s", want, src)
		}
	}
}

func TestNumDynamicInstructions(t *testing.T) {
	proc := core2()
	seq := NewInstructionSequence(proc)
	seq.SetInstructionTemplate("addl %r, %w")
	seq.SetDagType(CHAIN)
	seq.SetLength(5)
	if err := seq.Generate(); err != nil {
		t.Fatal(err)
	}
	loop := NewStraightLineLoop([]*InstructionSequence{seq}, proc)
	loop.Trips = 10
	ll := NewLoopList([]Loop{loop})
	if got := ll.NumDynamicInstructions(); got != 10*(5+2) {
		t.Errorf("NumDynamicInstructions = %d, want 70", got)
	}
}
