package mbench

import (
	"fmt"
	"math"
	"strings"
)

// InstructionLatency is the paper's Figure 6 case study, transliterated
// from its Python: form a loop with a cycle of instructions, one
// dependent on the other; execute the chain; collect CPU cycles and
// obtain the latency by division. The CYCLE dependence pattern ensures
// exactly one instruction is in the execution unit every cycle.
func InstructionLatency(proc *Processor, template string) (int, error) {
	seq := NewInstructionSequence(proc)
	seq.SetInstructionTemplate(template)
	seq.SetDagType(CYCLE)
	seq.SetLength(16)
	if err := seq.Generate(); err != nil {
		return 0, err
	}
	loop := NewStraightLineLoop([]*InstructionSequence{seq}, proc)
	loopList := NewLoopList([]Loop{loop})
	bench := NewBenchmark(loopList)
	results, err := bench.Execute(proc, []Counter{CPU_CYCLES})
	if err != nil {
		return 0, err
	}
	insnsInLoop := loop.BodyInstructions()
	latency := math.Round(float64(results[CPU_CYCLES]) / float64(insnsInLoop))
	return int(latency), nil
}

// DetectLSDWindow discovers the Loop Stream Detector's decode-line
// budget by growing a loop one decode line at a time until streaming
// stops (LSD_UOPS collapses). It returns the detected maximum number
// of lines, or 0 when the processor shows no LSD behaviour.
func DetectLSDWindow(proc *Processor) (int, error) {
	lineBytes := proc.Model.DecodeLineBytes
	detected := 0
	for lines := 1; lines <= 8; lines++ {
		// Build a loop of exactly `lines` decode lines out of 7-byte
		// adds (plus the 2-byte branch and 3-byte counter op).
		bodyBytes := lines*lineBytes - 8
		n := bodyBytes / 7
		if n < 1 {
			n = 1
		}
		var sb strings.Builder
		sb.WriteString("\t.text\n\t.type mb_main,@function\nmb_main:\n")
		sb.WriteString("\tmovl $3000, %r15d\n\t.p2align 5\n.Ltop:\n")
		regs := []string{"%r8d", "%r9d", "%r10d", "%r11d", "%r12d", "%r13d", "%r14d"}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "\taddl $100000, %s\n", regs[i%len(regs)])
		}
		sb.WriteString("\tdecl %r15d\n\tjne .Ltop\n\tret\n\t.size mb_main,.-mb_main\n")

		res, err := runSource(proc, sb.String())
		if err != nil {
			return 0, err
		}
		if res.LSDUops > 0 {
			detected = lines
		}
	}
	return detected, nil
}

// DetectBranchAliasGranularity discovers the branch-predictor index
// granularity (1 << BPIndexShift): two conflicting-pattern branches
// are placed at increasing distances, and the aliasing (visible as a
// mispredict cliff) disappears once they fall into separate buckets.
func DetectBranchAliasGranularity(proc *Processor) (int, error) {
	mispAt := func(gap int) (uint64, error) {
		var sb strings.Builder
		sb.WriteString("\t.text\n\t.type mb_main,@function\nmb_main:\n")
		sb.WriteString("\tmovl $4000, %esi\n\t.p2align 6\n.Louter:\n")
		// Branch A: never taken.
		sb.WriteString("\tmovl $1, %edx\n.Linner:\n\taddl $1, %eax\n\tdecl %edx\n\tjne .Linner\n")
		for i := 0; i < gap; i++ {
			sb.WriteString("\tnop\n")
		}
		// Branch B: always taken (the outer back edge).
		sb.WriteString("\tdecl %esi\n\tjne .Louter\n\tret\n\t.size mb_main,.-mb_main\n")
		res, err := runSource(proc, sb.String())
		if err != nil {
			return 0, err
		}
		return res.Mispredicts, nil
	}

	base, err := mispAt(0)
	if err != nil {
		return 0, err
	}
	// Find the smallest padding that drops mispredicts well below the
	// aliased baseline; the granularity is the bucket size containing
	// that boundary.
	for gap := 1; gap <= 128; gap++ {
		m, err := mispAt(gap)
		if err != nil {
			return 0, err
		}
		if base > 100 && m < base/4 {
			// The second branch crossed a bucket boundary; branch B
			// sits ~13 bytes into the structure, so the granularity
			// is the next power of two covering gap+13.
			g := 1
			for g < gap+13 {
				g *= 2
			}
			return g, nil
		}
	}
	return 0, fmt.Errorf("mbench: no aliasing cliff found (baseline mispredicts %d)", base)
}

// DetectForwardingBandwidth discovers how many consumers can receive a
// result in its completion cycle: fan-out k consumers off one producer
// and find the k at which RS_FULL stalls start accumulating.
func DetectForwardingBandwidth(proc *Processor) (int, error) {
	stallsAt := func(consumers int) (uint64, error) {
		var sb strings.Builder
		sb.WriteString("\t.text\n\t.type mb_main,@function\nmb_main:\n")
		sb.WriteString("\tmovl $1, %ebx\n\tmovl $4000, %r15d\n.Ltop:\n")
		sb.WriteString("\timull $-1640531527, %ebx, %ebx\n")
		regs := []string{"%ecx", "%edx", "%esi", "%edi", "%r8d", "%r9d"}
		for i := 0; i < consumers; i++ {
			fmt.Fprintf(&sb, "\tsubl %%ebx, %s\n", regs[i%len(regs)])
		}
		sb.WriteString("\tdecl %r15d\n\tjne .Ltop\n\tret\n\t.size mb_main,.-mb_main\n")
		res, err := runSource(proc, sb.String())
		if err != nil {
			return 0, err
		}
		return res.FwdDelays, nil
	}
	for k := 1; k <= 6; k++ {
		stalls, err := stallsAt(k)
		if err != nil {
			return 0, err
		}
		if stalls > 1000 {
			// The loop-carried imull is itself one same-cycle
			// consumer, so delays begin when the k explicit sinks
			// plus that one exceed the bandwidth: the cliff appears
			// at k == bandwidth.
			return k, nil
		}
	}
	return 6, nil
}

// DetectSustainedIPC discovers the machine's sustained instructions
// per cycle on independent ALU work — min(issue ports, decode width)
// on these models, the kind of aggregate the paper's framework infers
// when individual structures are opaque.
func DetectSustainedIPC(proc *Processor) (int, error) {
	var sb strings.Builder
	sb.WriteString("\t.text\n\t.type mb_main,@function\nmb_main:\n")
	sb.WriteString("\tmovl $4000, %r15d\n\t.p2align 5\n.Ltop:\n")
	// 24 independent 3-byte adds: no port pressure beyond ALU count,
	// no line pressure (72 bytes but fetch runs ahead).
	regs := []string{"%eax", "%ecx", "%edx", "%esi", "%edi", "%r8d"}
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "\taddl $%d, %s\n", 1+i%7, regs[i%len(regs)])
	}
	sb.WriteString("\tdecl %r15d\n\tjne .Ltop\n\tret\n\t.size mb_main,.-mb_main\n")
	res, err := runSource(proc, sb.String())
	if err != nil {
		return 0, err
	}
	ipc := float64(res.Insts) / float64(res.Cycles)
	return int(math.Round(ipc)), nil
}
