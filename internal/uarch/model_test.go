package uarch

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
)

func inst(t *testing.T, src string) *x86.Inst {
	t.Helper()
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	t.Fatal("no instruction")
	return nil
}

// TestPresetsMatchPaper pins the model parameters the experiments and
// the discovery framework depend on.
func TestPresetsMatchPaper(t *testing.T) {
	c2 := Core2()
	if !c2.HasLSD || c2.LSDMaxLines != 4 || c2.LSDMinIters != 64 {
		t.Errorf("Core2 LSD parameters wrong: %+v", c2)
	}
	if c2.DecodeLineBytes != 16 || c2.BPIndexShift != 5 || c2.FwdBandwidth != 2 {
		t.Errorf("Core2 front-end parameters wrong: %+v", c2)
	}
	op := Opteron()
	if op.HasLSD {
		t.Error("Opteron must not have an LSD")
	}
	if op.DecodeLineBytes != 32 || op.DecodeWidth != 3 || op.FwdBandwidth != 3 {
		t.Errorf("Opteron parameters wrong: %+v", op)
	}
	p4 := P4()
	if p4.MispredictCycles <= c2.MispredictCycles {
		t.Error("P4 must have the deepest pipeline")
	}
}

// TestClassifyPaperConstraints pins the paper's Section III-F port
// observations: lea only on port 0 (Intel), shifts on ports 0 and 5;
// the AMD model is symmetric.
func TestClassifyPaperConstraints(t *testing.T) {
	c2 := Core2()
	lea := c2.Class(inst(t, "leaq (%rax,%rbx), %rcx"))
	if lea.Ports != P0 {
		t.Errorf("Core2 lea ports = %b, want port 0 only", lea.Ports)
	}
	sar := c2.Class(inst(t, "sarl %ecx"))
	if sar.Ports != P0|P5 {
		t.Errorf("Core2 sar ports = %b, want ports 0 and 5", sar.Ports)
	}
	op := Opteron()
	if op.Class(inst(t, "leaq (%rax,%rbx), %rcx")).Ports != PALU {
		t.Error("Opteron lea must use all ALU ports")
	}
}

func TestClassifyLatencies(t *testing.T) {
	c2 := Core2()
	cases := map[string]int{
		"addl %eax, %ebx":       1,
		"imull %eax, %ebx":      3,
		"idivl %ecx":            22,
		"mulsd %xmm0, %xmm1":    5,
		"movq (%rax), %rbx":     3,
		"movq %rbx, (%rax)":     3,
		"nop":                   1,
		"jne .L":                1,
		"sqrtsd %xmm0, %xmm1":   20,
		"cvtsi2sdq %rax, %xmm0": 4,
	}
	for src, want := range cases {
		if got := c2.Class(inst(t, src+"\n.L:\n")).Latency; got != want {
			t.Errorf("latency(%q) = %d, want %d", src, got, want)
		}
	}
}

func TestPortMask(t *testing.T) {
	m := P0 | P5
	if !m.Has(0) || m.Has(1) || !m.Has(5) {
		t.Error("PortMask.Has broken")
	}
	if m.Count() != 2 || PALU.Count() != 3 {
		t.Error("PortMask.Count broken")
	}
}
