package pmu

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/uarch/exec"
)

// TestEdgeProfileFromExecution derives an edge profile from exact
// per-instruction execution counts (the ideal-sampling limit) and
// checks it against ground truth from the executor's branch events.
func TestEdgeProfileFromExecution(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	movl $100, %ecx
	xorl %eax, %eax
.Ltop:
	testl $1, %ecx
	je .Leven
	addl $3, %eax
	jmp .Lnext
.Leven:
	addl $1, %eax
.Lnext:
	decl %ecx
	jne .Ltop
	ret
	.size f,.-f
`
	u, err := asm.ParseString("e.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Exact per-node execution counts and ground-truth taken counts.
	counts := make(map[*ir.Node]int64)
	taken := make(map[*ir.Node]int64)    // per branch node
	notTaken := make(map[*ir.Node]int64) // per cond branch node
	_, err = exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: "f",
		OnEvent: func(ev exec.Event) {
			counts[ev.Node]++
			if ev.IsCondBranch {
				if ev.Taken {
					taken[ev.Node]++
				} else {
					notTaken[ev.Node]++
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	f := u.Function("f")
	g := cfg.Build(f)
	p := Edges(g, counts)

	if len(p.Unresolved) != 0 {
		t.Errorf("unresolved edges: %v", p.Unresolved)
	}

	// Check every conditional branch's edge split against truth.
	for _, b := range g.Blocks {
		last := b.Last()
		if last == nil || !last.Inst.Op.IsCondBranch() {
			continue
		}
		tgt, _ := last.Inst.BranchTarget()
		tb := g.BlockByLabel(tgt)
		takenEdge := Edge{b, tb}
		if got := p.EdgeCount[takenEdge]; got != taken[last] {
			t.Errorf("taken edge of %v: profile %d, truth %d", last.Inst, got, taken[last])
		}
		// Fallthrough edge.
		for _, s := range b.Succs {
			if s == tb {
				continue
			}
			if got := p.EdgeCount[Edge{b, s}]; got != notTaken[last] {
				t.Errorf("fallthrough edge of %v: profile %d, truth %d",
					last.Inst, got, notTaken[last])
			}
		}
	}

	// The loop head must have been counted 100 times.
	top := g.BlockByLabel(".Ltop")
	if p.BlockCount[top] != 100 {
		t.Errorf("loop head count = %d, want 100", p.BlockCount[top])
	}
	// The parity split: 50 odd / 50 even.
	even := g.BlockByLabel(".Leven")
	if p.BlockCount[even] != 50 {
		t.Errorf("even block count = %d, want 50", p.BlockCount[even])
	}
}

// TestEdgeProfileNoise: sampling noise (an inflated inner count) must
// clamp rather than produce negative edges.
func TestEdgeProfileNoise(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	testl %edi, %edi
	je .La
	nop
.La:
	ret
	.size f,.-f
`
	u, err := asm.ParseString("n.s", src)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Function("f")
	g := cfg.Build(f)

	counts := make(map[*ir.Node]int64)
	insts := f.Instructions()
	counts[insts[0]] = 10 // entry
	counts[insts[1]] = 10
	counts[insts[2]] = 12 // noisy: more samples than the entry block
	counts[insts[3]] = 10

	p := Edges(g, counts)
	for e, v := range p.EdgeCount {
		if v < 0 {
			t.Errorf("negative edge count %d on %v->%v", v, e.From, e.To)
		}
	}
}
