package pmu

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/uarch/exec"
	"mao/internal/x86"
)

func setup(t *testing.T, src string) (*ir.Unit, *relax.Layout) {
	t.Helper()
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, layout
}

const sampleSrc = `
	.text
	.type f,@function
f:
	push %rbp
	mov %rsp, %rbp
	movl $5, %eax
	pop %rbp
	ret
	.size f,.-f
`

func TestMapSample(t *testing.T) {
	u, layout := setup(t, sampleSrc)
	// Offsets: push=0 (1B), mov=1 (3B), movl=4 (5B), pop=9 (1B), ret=10.
	cases := []struct {
		off  int64
		want x86.Op
	}{
		{0, x86.OpPUSH}, {1, x86.OpMOV}, {2, x86.OpMOV}, {3, x86.OpMOV},
		{4, x86.OpMOV}, {6, x86.OpMOV}, {8, x86.OpMOV},
		{9, x86.OpPOP}, {10, x86.OpRET},
	}
	for _, c := range cases {
		n := MapSample(u, layout, Sample{Function: "f", Offset: c.off})
		if n == nil {
			t.Errorf("offset %d unmapped", c.off)
			continue
		}
		if n.Inst.Op != c.want {
			t.Errorf("offset %d -> %v, want %v", c.off, n.Inst.Op, c.want)
		}
	}
	if n := MapSample(u, layout, Sample{Function: "f", Offset: 99}); n != nil {
		t.Error("out-of-range offset mapped")
	}
	if n := MapSample(u, layout, Sample{Function: "nope", Offset: 0}); n != nil {
		t.Error("unknown function mapped")
	}
}

func TestAttribute(t *testing.T) {
	u, layout := setup(t, sampleSrc)
	counts, dropped := Attribute(u, layout, []Sample{
		{"f", 0, 10}, {"f", 2, 5}, {"f", 3, 5}, {"f", 99, 1},
	})
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	var movCount int64
	for n, c := range counts {
		if n.Inst.Op == x86.OpMOV {
			movCount += c
		}
	}
	if movCount != 10 {
		t.Errorf("mov samples = %d, want 10 (aggregated)", movCount)
	}
}

func TestReuseProfile(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	movl $30, %r9d
	leaq buf(%rip), %rcx
.Lloop:
	movq hot(%rip), %rax
	movq (%rcx), %rbx
	addq $64, %rcx
	decl %r9d
	jne .Lloop
	ret
	.size f,.-f
	.data
hot:
	.quad 7
	.p2align 6
buf:
	.zero 4096
`
	u, layout := setup(t, src)
	res, err := exec.Run(&exec.Config{Unit: u, Layout: layout, Entry: "f", CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sites := ReuseProfile(u, res.Trace, 64)
	// The hot load (site reused every iteration) must have a short
	// distance; the streaming load (fresh line each iteration) only
	// first-touches.
	var hotDist, streamDist int64 = -1, -1
	for _, s := range sites {
		switch s.Index {
		case 2: // movq hot(%rip), %rax
			hotDist = s.Distance
		case 3: // movq (%rcx), %rbx
			streamDist = s.Distance
		}
	}
	if hotDist < 0 || streamDist < 0 {
		t.Fatalf("profile incomplete: %+v", sites)
	}
	if hotDist > 10 {
		t.Errorf("hot load distance = %d, want small", hotDist)
	}
	if streamDist < 1<<32 {
		t.Errorf("streaming load distance = %d, want first-touch (huge)", streamDist)
	}
}
