package pmu

import (
	"mao/internal/cfg"
	"mao/internal/ir"
)

// Edge identifies one CFG edge.
type Edge struct {
	From, To *cfg.BasicBlock
}

// EdgeProfile estimates basic-block and edge execution counts from
// instruction-level sample counts — the future-work item the paper
// takes from Chen et al. ("Taming hardware event samples for FDO
// compilation"): since MAO can map samples to instructions, block
// frequencies follow directly, and edge frequencies follow from flow
// conservation wherever the CFG determines them.
type EdgeProfile struct {
	// BlockCount is the estimated execution count per block.
	BlockCount map[*cfg.BasicBlock]int64
	// EdgeCount holds the edges whose counts flow conservation could
	// determine.
	EdgeCount map[Edge]int64
	// Unresolved lists edges whose counts remain unknown (flow
	// conservation underdetermines them, e.g. two unknown out-edges).
	Unresolved []Edge
}

// Edges derives an EdgeProfile for one function CFG from per-node
// sample counts (as produced by Attribute). A block's count estimate
// is the maximum per-instruction count within it — robust against
// skid and against long blocks accumulating more samples.
func Edges(g *cfg.Graph, counts map[*ir.Node]int64) *EdgeProfile {
	p := &EdgeProfile{
		BlockCount: make(map[*cfg.BasicBlock]int64),
		EdgeCount:  make(map[Edge]int64),
	}

	for _, b := range g.Blocks {
		var c int64
		for _, n := range b.Insts {
			if v := counts[n]; v > c {
				c = v
			}
		}
		p.BlockCount[b] = c
	}

	// Empty blocks (labels only) inherit flow later; seed trivially
	// determined edges, then iterate conservation:
	//
	//	sum(in-edges)  = BlockCount[b]
	//	sum(out-edges) = BlockCount[b]
	//
	// whenever exactly one edge of a group is unknown, solve it.
	known := func(e Edge) (int64, bool) {
		v, ok := p.EdgeCount[e]
		return v, ok
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			total := p.BlockCount[b]

			// Out-edges.
			if n := len(b.Succs); n == 1 {
				e := Edge{b, b.Succs[0]}
				if _, ok := known(e); !ok {
					p.EdgeCount[e] = total
					changed = true
				}
			} else if n > 1 {
				var sum int64
				unknown := -1
				for i, s := range b.Succs {
					if v, ok := known(Edge{b, s}); ok {
						sum += v
					} else if unknown < 0 {
						unknown = i
					} else {
						unknown = -2 // more than one unknown
					}
				}
				if unknown >= 0 {
					v := total - sum
					if v < 0 {
						v = 0 // sampling noise; clamp
					}
					p.EdgeCount[Edge{b, b.Succs[unknown]}] = v
					changed = true
				}
			}

			// In-edges.
			if n := len(b.Preds); n == 1 {
				e := Edge{b.Preds[0], b}
				if _, ok := known(e); !ok {
					p.EdgeCount[e] = total
					changed = true
				}
			} else if n > 1 {
				var sum int64
				unknown := -1
				for i, pr := range b.Preds {
					if v, ok := known(Edge{pr, b}); ok {
						sum += v
					} else if unknown < 0 {
						unknown = i
					} else {
						unknown = -2
					}
				}
				if unknown >= 0 {
					v := total - sum
					if v < 0 {
						v = 0
					}
					p.EdgeCount[Edge{b.Preds[unknown], b}] = v
					changed = true
				}
			}

			// A block with no samples but fully known in-edges gets
			// its count from flow (helps label-only blocks).
			if total == 0 && len(b.Preds) > 0 {
				var sum int64
				all := true
				for _, pr := range b.Preds {
					v, ok := known(Edge{pr, b})
					if !ok {
						all = false
						break
					}
					sum += v
				}
				if all && sum > 0 {
					p.BlockCount[b] = sum
					changed = true
				}
			}
		}
	}

	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if _, ok := p.EdgeCount[Edge{b, s}]; !ok {
				p.Unresolved = append(p.Unresolved, Edge{b, s})
			}
		}
	}
	return p
}
