// Package pmu provides the profile-side infrastructure of MAO: mapping
// hardware-style event samples (function + byte offset, as tools like
// oprofile report them) onto individual IR instructions, and a memory
// reuse-distance profiler over executor traces — the profile input of
// the inverse-prefetching pass (paper III-E.k).
//
// Mapping samples to instructions is possible precisely because MAO
// knows every instruction's size (paper Section II): the byte offset
// of a sample falls inside exactly one instruction's [addr, addr+len)
// range.
package pmu

import (
	"sort"

	"mao/internal/ir"
	"mao/internal/passes"
	"mao/internal/relax"
	"mao/internal/uarch/exec"
)

// Sample is one hardware-event sample as delivered by a profiling
// tool: an event count at a byte offset within a function.
type Sample struct {
	Function string
	Offset   int64 // byte offset from the function's entry label
	Count    int64
}

// MapSample resolves a sample to the instruction node containing its
// offset, or nil when the offset falls outside the function or on
// padding.
func MapSample(u *ir.Unit, layout *relax.Layout, s Sample) *ir.Node {
	f := u.Function(s.Function)
	if f == nil {
		return nil
	}
	base := layout.Addr(f.EntryLabel())
	target := base + s.Offset
	for _, n := range f.Instructions() {
		a := layout.Addr(n)
		if target >= a && target < a+int64(layout.Len(n)) {
			return n
		}
	}
	return nil
}

// Attribute maps a batch of samples onto instructions, accumulating
// counts per node. Unmappable samples are returned in dropped.
func Attribute(u *ir.Unit, layout *relax.Layout, samples []Sample) (counts map[*ir.Node]int64, dropped int) {
	counts = make(map[*ir.Node]int64)
	for _, s := range samples {
		if n := MapSample(u, layout, s); n != nil {
			counts[n] += s.Count
		} else {
			dropped++
		}
	}
	return counts, dropped
}

// ReuseProfile computes per-load-site memory reuse distances from an
// executor trace. The distance of an access is the number of dynamic
// instructions since the same cache line was last touched (MaxInt64
// for first touches); a site's profile value is the minimum observed
// distance (a site with even one short-reuse access is not a
// non-temporal candidate).
func ReuseProfile(u *ir.Unit, trace []exec.Event, lineBytes int) []passes.ReuseSite {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	type key struct {
		fn  string
		idx int
	}
	// Index instruction nodes by function and position.
	siteOf := make(map[*ir.Node]key)
	for _, f := range u.Functions() {
		for i, n := range f.Instructions() {
			siteOf[n] = key{f.Name, i}
		}
	}

	lastTouch := make(map[uint64]int64) // line -> instruction index
	minDist := make(map[key]int64)
	lines := make(map[key]map[uint64]bool) // per-site distinct lines
	const never = int64(1) << 62

	for i, ev := range trace {
		if !ev.HasLoad || ev.AccessLen == 0 {
			continue
		}
		line := ev.LoadAddr / uint64(lineBytes)
		dist := never
		if last, seen := lastTouch[line]; seen {
			dist = int64(i) - last
		}
		lastTouch[line] = int64(i)

		k, ok := siteOf[ev.Node]
		if !ok {
			continue
		}
		if d, seen := minDist[k]; !seen || dist < d {
			minDist[k] = dist
		}
		if lines[k] == nil {
			lines[k] = make(map[uint64]bool)
		}
		lines[k][line] = true
	}

	out := make([]passes.ReuseSite, 0, len(minDist))
	for k, d := range minDist {
		out = append(out, passes.ReuseSite{
			Function: k.fn, Index: k.idx, Distance: d,
			Footprint: int64(len(lines[k])),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Function != out[j].Function {
			return out[i].Function < out[j].Function
		}
		return out[i].Index < out[j].Index
	})
	return out
}
