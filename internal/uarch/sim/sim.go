// Package sim is the trace-driven timing simulator MAO's experiments
// measure against. It consumes the dynamic instruction events produced
// by mao/internal/uarch/exec and charges cycles according to a
// CPUModel's explicit mechanisms: decode-line-limited fetch, the Loop
// Stream Detector, a PC>>shift-indexed branch predictor, port- and
// latency-constrained out-of-order execution with a result-forwarding
// bandwidth limit, in-order retirement, and a small set-associative
// data cache with non-temporal fills.
//
// The model is deliberately mechanistic rather than cycle-exact: every
// performance effect it produces is attributable to one named
// parameter, which is what both the paper's optimization passes and
// its Section IV parameter-detection framework need.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"mao/internal/dataflow"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
)

// Counters are the simulator's PMU-style event counts.
type Counters struct {
	Cycles uint64
	Insts  uint64

	// Front end.
	DecodeLines uint64 // 16-byte lines fetched by the legacy decoder
	LSDUops     uint64 // instructions streamed from the LSD
	LSDLoops    uint64 // times the LSD locked onto a loop

	// Branches.
	CondBranches uint64
	Mispredicts  uint64

	// Back end.
	RSFullStalls uint64 // RESOURCE_STALLS:RS_FULL analog (incl. forwarding backpressure)
	FwdDelays    uint64 // consumers delayed by the forwarding bandwidth limit
	PortConflict uint64 // cycles lost waiting for an execution port

	// Memory.
	CacheHits   uint64
	CacheMisses uint64
	NTFills     uint64 // non-temporal line fills
}

// IPC returns retired instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Insts) / float64(c.Cycles)
}

// String summarizes the counters, one per line, in a fixed order.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU_CYCLES            %12d\n", c.Cycles)
	fmt.Fprintf(&b, "INST_RETIRED          %12d (IPC %.2f)\n", c.Insts, c.IPC())
	fmt.Fprintf(&b, "DECODE_LINES          %12d\n", c.DecodeLines)
	fmt.Fprintf(&b, "LSD_UOPS              %12d\n", c.LSDUops)
	fmt.Fprintf(&b, "BR_COND               %12d\n", c.CondBranches)
	fmt.Fprintf(&b, "BR_MISP               %12d\n", c.Mispredicts)
	fmt.Fprintf(&b, "RESOURCE_STALLS:RS_FULL %10d\n", c.RSFullStalls)
	fmt.Fprintf(&b, "L1D_HITS              %12d\n", c.CacheHits)
	fmt.Fprintf(&b, "L1D_MISSES            %12d\n", c.CacheMisses)
	return b.String()
}

// Sim is a streaming simulator instance. Feed it events in dynamic
// order and call Finish for the counters.
type Sim struct {
	model *uarch.CPUModel
	c     Counters

	// Front end. The fetcher runs ahead of the decoder at one line
	// per cycle from the last redirect; the decoder delivers
	// DecodeWidth instructions per cycle but cannot decode past a
	// line that has not arrived. The two overlap, so a loop iteration
	// costs max(lines, insts/width) (+ redirect), not their sum.
	feCycle     uint64 // decoder cycle for the next delivery
	curLine     int64  // last decode line consumed (-1 = after redirect)
	decodedInFE int    // instructions delivered in the current cycle
	fetchBase   uint64 // cycle fetching restarted (at fetchLine0)
	fetchLine0  int64  // first line fetched after the last redirect

	// Branch predictor: 2-bit saturating counters.
	bp []uint8

	// LSD.
	lsd lsdState

	// Back end scoreboard.
	regReady     [32]uint64 // value-ready cycle per register family slot
	flagsReady   uint64
	regProducer  [32]int // index into producers ring
	producers    []producer
	portFree     [8]uint64
	rsStart      []uint64 // exec-start cycles ring (RS occupancy)
	rsHead       int
	lastDispatch uint64
	retire       []uint64 // retire-cycle ring (RetireWidth)
	retireHead   int
	lastRetire   uint64
	storeReady   uint64 // conservative store->load ordering

	cache *cache
}

type producer struct {
	done     uint64
	forwards int
}

type lsdState struct {
	active     bool
	target     int64 // loop head address
	branchEnd  int64 // end address of the back branch
	iterations int
	lastHead   int64
	lastEnd    int64
}

// New returns a simulator for the given model.
func New(model *uarch.CPUModel) *Sim {
	s := &Sim{
		model:   model,
		curLine: -1,
		bp:      make([]uint8, model.BPTableSize),
		retire:  make([]uint64, maxInt(model.RetireWidth, 1)),
		rsStart: make([]uint64, maxInt(model.RSSize, 1)),
		cache:   newCache(model),
	}
	// Weakly-taken initial predictor state.
	for i := range s.bp {
		s.bp[i] = 2
	}
	s.producers = append(s.producers, producer{})
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Simulate runs a whole trace and returns the counters.
func Simulate(model *uarch.CPUModel, trace []exec.Event) *Counters {
	s := New(model)
	for _, ev := range trace {
		s.Feed(ev)
	}
	return s.Finish()
}

// Feed advances the simulation by one dynamic instruction.
func (s *Sim) Feed(ev exec.Event) {
	m := s.model
	s.c.Insts++

	// ---- Front end: decode-line-limited delivery or LSD stream.
	deliver := s.feCycle
	if s.lsd.active && s.inLSDLoop(ev.Addr) {
		s.c.LSDUops++
		if s.decodedInFE >= m.DecodeWidth {
			s.feCycle++
			s.decodedInFE = 0
		}
		deliver = s.feCycle
		s.decodedInFE++
	} else {
		if s.lsd.active {
			// Falling out of the LSD restarts the legacy fetch path.
			s.lsd.active = false
			s.curLine = -1
		}
		firstLine := ev.Addr / int64(m.DecodeLineBytes)
		lastLine := (ev.Addr + int64(ev.Len) - 1) / int64(m.DecodeLineBytes)
		if s.curLine < 0 {
			// Fetch restarts here: line i of the new stream is ready
			// at fetchBase + 1 + i.
			s.fetchBase = s.feCycle
			s.fetchLine0 = firstLine
			s.c.DecodeLines += uint64(lastLine - firstLine + 1)
		} else if lastLine > s.curLine {
			s.c.DecodeLines += uint64(lastLine - s.curLine)
		}
		s.curLine = lastLine

		// Decode-width slotting.
		if s.decodedInFE >= m.DecodeWidth {
			s.feCycle++
			s.decodedInFE = 0
		}
		// The decoder waits for the instruction's last line to arrive.
		if span := lastLine - s.fetchLine0; span >= 0 {
			if ready := s.fetchBase + 1 + uint64(span); ready > s.feCycle {
				s.feCycle = ready
				s.decodedInFE = 0
			}
		}
		deliver = s.feCycle
		s.decodedInFE++
	}

	// ---- Back end: dispatch, issue, execute.
	in := ev.Node.Inst
	class := s.model.Class(in)
	du := dataflow.InstDefUse(in)

	// RS occupancy: the entry used RSSize instructions ago must have
	// issued before this one can dispatch; a full RS back-pressures
	// the front end (the decode queue is finite), which is what the
	// RESOURCE_STALLS:RS_FULL counter observes.
	dispatch := deliver
	if old := s.rsStart[s.rsHead]; old > dispatch {
		floor := deliver
		if s.lastDispatch > floor {
			floor = s.lastDispatch
		}
		if old > floor {
			s.c.RSFullStalls += old - floor
		}
		dispatch = old
		if dispatch > s.feCycle {
			s.feCycle = dispatch
			s.decodedInFE = 0
		}
	}
	if dispatch > s.lastDispatch {
		s.lastDispatch = dispatch
	}

	// Source readiness with forwarding-bandwidth accounting.
	ready := dispatch
	for b := 0; b < 32; b++ {
		if du.Uses&(1<<b) == 0 {
			continue
		}
		t := s.regReady[b]
		if t > 0 {
			p := &s.producers[s.regProducer[b]]
			if t >= ready && p.done == t {
				if p.forwards >= m.FwdBandwidth {
					t++
					s.c.FwdDelays++
					s.c.RSFullStalls++
				} else {
					p.forwards++
				}
			}
		}
		if t > ready {
			ready = t
		}
	}
	if du.FlagUses != 0 && s.flagsReady > ready {
		ready = s.flagsReady
	}
	if du.MemUse && s.storeReady > ready {
		ready = s.storeReady
	}

	// Memory access latency through the cache.
	latency := class.Latency
	if ev.HasLoad && ev.AccessLen > 0 {
		if s.cache.access(ev.LoadAddr, false) {
			s.c.CacheHits++
		} else {
			s.c.CacheMisses++
			latency += m.MemMissCycles
		}
	}
	if ev.NonTemporal {
		s.cache.hintNT(ev.LoadAddr)
		s.c.NTFills++
	}
	if ev.HasStore {
		if s.cache.access(ev.StoreAddr, true) {
			s.c.CacheHits++
		} else {
			s.c.CacheMisses++
		}
	}

	// Port allocation: earliest allowed port at or after ready.
	start := ready
	bestPort, bestStart := -1, uint64(1<<62)
	for p := 0; p < 8; p++ {
		if !class.Ports.Has(p) {
			continue
		}
		st := ready
		if s.portFree[p] > st {
			st = s.portFree[p]
		}
		if st < bestStart {
			bestStart, bestPort = st, p
		}
	}
	if bestPort >= 0 {
		if bestStart > ready {
			s.c.PortConflict += bestStart - ready
		}
		start = bestStart
		s.portFree[bestPort] = start + 1
	}
	done := start + uint64(latency)

	// Record RS slot and producer.
	s.rsStart[s.rsHead] = start
	s.rsHead = (s.rsHead + 1) % len(s.rsStart)

	prodIdx := len(s.producers)
	s.producers = append(s.producers, producer{done: done})
	if len(s.producers) > 4096 {
		// Compact: drop ancient producers (their forwarding windows
		// are long past). Remap the live references.
		s.compactProducers()
		prodIdx = len(s.producers) - 1
	}
	for b := 0; b < 32; b++ {
		if du.Defs&(1<<b) != 0 {
			s.regReady[b] = done
			s.regProducer[b] = prodIdx
		}
	}
	if du.FlagDefs != 0 {
		s.flagsReady = done
	}
	if ev.HasStore {
		if done > s.storeReady {
			s.storeReady = done
		}
	}

	// ---- Branches: prediction and redirect.
	if ev.IsBranch {
		mispredicted := false
		if ev.IsCondBranch {
			s.c.CondBranches++
			idx := (uint64(ev.Addr) >> m.BPIndexShift) & uint64(m.BPTableSize-1)
			predictTaken := s.bp[idx] >= 2
			if predictTaken != ev.Taken {
				mispredicted = true
				s.c.Mispredicts++
			}
			if ev.Taken {
				if s.bp[idx] < 3 {
					s.bp[idx]++
				}
			} else if s.bp[idx] > 0 {
				s.bp[idx]--
			}
		}
		if ev.Taken {
			// Redirect: the front end restarts at the target line —
			// unless the LSD is streaming this loop, which is the
			// whole point of the structure: the back branch costs no
			// fetch redirect.
			if !(s.lsd.active && s.inLSDLoop(ev.Target)) {
				s.curLine = -1
				s.decodedInFE = 0
				if s.feCycle < deliver+1 {
					s.feCycle = deliver + 1
				}
			}
			if mispredicted {
				// The pipeline restarts after the branch resolves.
				restart := done + uint64(m.MispredictCycles)
				if restart > s.feCycle {
					s.feCycle = restart
				}
			}
			s.observeLoop(ev)
		} else if ev.IsCondBranch && mispredicted {
			restart := done + uint64(m.MispredictCycles)
			if restart > s.feCycle {
				s.feCycle = restart
			}
		}
	}

	// ---- In-order retirement.
	rc := done
	if s.lastRetire > rc {
		rc = s.lastRetire
	}
	if old := s.retire[s.retireHead]; old+1 > rc {
		rc = old + 1
	}
	s.retire[s.retireHead] = rc
	s.retireHead = (s.retireHead + 1) % len(s.retire)
	s.lastRetire = rc
	if rc > s.c.Cycles {
		s.c.Cycles = rc
	}
}

// compactProducers keeps only the most recent producers; forwarding
// decisions only concern just-completed results.
func (s *Sim) compactProducers() {
	const keep = 64
	off := len(s.producers) - keep
	s.producers = append([]producer{}, s.producers[off:]...)
	for b := range s.regProducer {
		s.regProducer[b] -= off
		if s.regProducer[b] < 0 {
			s.regProducer[b] = 0
		}
	}
}

// inLSDLoop reports whether addr lies within the locked loop body.
func (s *Sim) inLSDLoop(addr int64) bool {
	return addr >= s.lsd.target && addr < s.lsd.branchEnd
}

// observeLoop tracks backward taken branches to detect LSD-eligible
// loops: same head and branch seen LSDMinIters times consecutively,
// with the body spanning at most LSDMaxLines decode lines.
func (s *Sim) observeLoop(ev exec.Event) {
	m := s.model
	if !m.HasLSD {
		return
	}
	if ev.Target > ev.Addr {
		// Forward branch: leaving any loop resets the streak unless
		// it stays inside the body.
		if s.lsd.active && !s.inLSDLoop(ev.Target) {
			s.lsd = lsdState{}
		}
		return
	}
	head := ev.Target
	end := ev.Addr + int64(ev.Len)
	if head == s.lsd.lastHead && end == s.lsd.lastEnd {
		s.lsd.iterations++
	} else {
		s.lsd = lsdState{lastHead: head, lastEnd: end, iterations: 1}
	}
	if s.lsd.active {
		return
	}
	firstLine := head / int64(m.DecodeLineBytes)
	lastLine := (end - 1) / int64(m.DecodeLineBytes)
	lines := int(lastLine - firstLine + 1)
	if s.lsd.iterations >= m.LSDMinIters && lines <= m.LSDMaxLines {
		s.lsd.active = true
		s.lsd.target = head
		s.lsd.branchEnd = end
		s.c.LSDLoops++
	}
}

// Finish returns the accumulated counters.
func (s *Sim) Finish() *Counters {
	c := s.c
	if c.Cycles == 0 && c.Insts > 0 {
		c.Cycles = 1
	}
	return &c
}

// cache is a small set-associative LRU data cache with non-temporal
// fill support: lines hinted via prefetchnta fill only the last way,
// so streaming data replaces a single way (III-E.k).
type cache struct {
	sets      int
	ways      int
	lineBytes uint64
	tags      [][]uint64 // [set][way], 0 = empty; stored as line|1
	nt        map[uint64]bool
}

func newCache(m *uarch.CPUModel) *cache {
	c := &cache{
		sets:      maxInt(m.CacheSets, 1),
		ways:      maxInt(m.CacheWays, 1),
		lineBytes: uint64(maxInt(m.CacheLineBytes, 1)),
		nt:        make(map[uint64]bool),
	}
	c.tags = make([][]uint64, c.sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, c.ways)
	}
	return c
}

// hintNT marks a line for non-temporal fill.
func (c *cache) hintNT(addr uint64) {
	c.nt[addr/c.lineBytes] = true
}

// access touches addr, returning hit/miss, and fills on miss.
func (c *cache) access(addr uint64, _ bool) bool {
	line := addr / c.lineBytes
	set := int(line % uint64(c.sets))
	tag := line | 1<<63 // distinguish line 0 from empty
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			// LRU: move to front.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	// Miss: fill. Non-temporal lines go to the last way only.
	if c.nt[line] {
		ways[c.ways-1] = tag
		return false
	}
	copy(ways[1:], ways[:c.ways-1])
	ways[0] = tag
	return false
}

// FormatComparison renders a table of named counter sets side by side
// (used by the benchmark harness to print paper-style tables).
func FormatComparison(names []string, cs []*Counters) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "counter")
	for _, n := range names {
		fmt.Fprintf(&b, "%14s", n)
	}
	b.WriteByte('\n')
	row := func(label string, get func(*Counters) uint64) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, c := range cs {
			fmt.Fprintf(&b, "%14d", get(c))
		}
		b.WriteByte('\n')
	}
	row("CPU_CYCLES", func(c *Counters) uint64 { return c.Cycles })
	row("INST_RETIRED", func(c *Counters) uint64 { return c.Insts })
	row("DECODE_LINES", func(c *Counters) uint64 { return c.DecodeLines })
	row("LSD_UOPS", func(c *Counters) uint64 { return c.LSDUops })
	row("BR_MISP", func(c *Counters) uint64 { return c.Mispredicts })
	row("RS_FULL", func(c *Counters) uint64 { return c.RSFullStalls })
	row("L1D_MISSES", func(c *Counters) uint64 { return c.CacheMisses })
	return b.String()
}

// SortedPorts is a debugging helper listing port->busy-until pairs.
func (s *Sim) SortedPorts() []string {
	var out []string
	for p, f := range s.portFree {
		if f > 0 {
			out = append(out, fmt.Sprintf("p%d:%d", p, f))
		}
	}
	sort.Strings(out)
	return out
}
