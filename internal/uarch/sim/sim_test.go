package sim

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/x86"
)

// simProgram assembles, executes and simulates a function body.
func simProgram(t *testing.T, model *uarch.CPUModel, body string, init map[x86.Reg]uint64) *Counters {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatalf("relax: %v", err)
	}
	s := New(model)
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: "f",
		InitRegs: init,
		OnEvent:  func(ev exec.Event) { s.Feed(ev) },
		MaxInsts: 5_000_000,
	})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	_ = res
	return s.Finish()
}

// noLSD returns a Core2 model with the Loop Stream Detector disabled,
// isolating the legacy-decode path.
func noLSD() *uarch.CPUModel {
	m := uarch.Core2()
	m.HasLSD = false
	return m
}

// pad emits n one-byte nops.
func pad(n int) string {
	return strings.Repeat("\tnop\n", n)
}

// shortLoop builds a 14-byte loop whose head sits exactly `off` bytes
// past a 16-byte boundary: addq(4) + addq(4) + cmpq(4) + jne(2).
func shortLoop(off int, iters int) string {
	return `
	xorl %eax, %eax
	xorl %ecx, %ecx
	.p2align 4
` + pad(off) + `
.Lloop:
	addq $1, %rax
	addq $3, %rcx
	cmpq $` + itoa(iters) + `, %rax
	jne .Lloop
	ret
`
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

// TestDecodeLineAlignment reproduces the LOOP16 premise (paper
// III-C.e): the identical short loop is slower when it crosses a
// 16-byte decode-line boundary. The eon regression between GCC 4.2 and
// 4.3 was exactly this effect.
func TestDecodeLineAlignment(t *testing.T) {
	model := noLSD()
	// The loop body is 14 bytes (4+4+4+2): aligned it decodes from
	// one line, at offset 9 it straddles two.
	aligned := simProgram(t, model, shortLoop(0, 50), nil)
	misaligned := simProgram(t, model, shortLoop(9, 50), nil)
	if aligned.Cycles >= misaligned.Cycles {
		t.Errorf("aligned loop must be faster: aligned=%d misaligned=%d",
			aligned.Cycles, misaligned.Cycles)
	}
	if misaligned.DecodeLines <= aligned.DecodeLines {
		t.Errorf("misaligned loop must fetch more lines: %d vs %d",
			misaligned.DecodeLines, aligned.DecodeLines)
	}
}

// bigLoop builds a loop of 7-byte independent adds (addl imm32 to
// r8d..r15d, so the back end never serializes) plus a 4-byte cmp and a
// 2-byte backward branch, its head `off` bytes past a 16-byte
// boundary.
func bigLoop(off, adds, iters int) string {
	regs := []string{"%r8d", "%r9d", "%r10d", "%r11d", "%r12d", "%r13d", "%r14d"}
	var b strings.Builder
	b.WriteString("\txorl %eax, %eax\n\t.p2align 4\n")
	b.WriteString(pad(off))
	b.WriteString(".Lloop:\n")
	for i := 0; i < adds; i++ {
		b.WriteString("\taddl $100000, " + regs[i%len(regs)] + "\n")
	}
	b.WriteString("\taddl $1, %eax\n") // 3 bytes
	b.WriteString("\tcmpl $" + itoa(iters) + ", %eax\n")
	b.WriteString("\tjl .Lloop\n\tret\n")
	return b.String()
}

// TestLSDStreamsFittingLoop reproduces the paper's Figure 4/5 effect:
// a loop spanning more than four decode lines cannot stream from the
// LSD; shifted to fit four lines it streams and runs much faster.
func TestLSDStreamsFittingLoop(t *testing.T) {
	model := uarch.Core2()
	// 7 adds * 7B + add 3B + cmp 6B + jl 2B = 60 bytes: 4 lines when
	// aligned, 5 lines from offset 13.
	fits := simProgram(t, model, bigLoop(0, 7, 300), nil)
	straddles := simProgram(t, model, bigLoop(13, 7, 300), nil)

	if fits.LSDUops == 0 {
		t.Fatal("fitting loop must stream from the LSD")
	}
	if straddles.LSDUops != 0 {
		t.Fatalf("straddling loop must not stream (LSDUops=%d)", straddles.LSDUops)
	}
	if fits.Cycles >= straddles.Cycles {
		t.Errorf("LSD-streamed loop must be faster: %d vs %d cycles",
			fits.Cycles, straddles.Cycles)
	}
	speedup := float64(straddles.Cycles) / float64(fits.Cycles)
	t.Logf("LSD speedup: %.2fx (paper reports ~2x)", speedup)
	if speedup < 1.2 {
		t.Errorf("LSD speedup %.2f too small to explain the paper's effect", speedup)
	}
}

// TestLSDNeedsIterations: below the 64-iteration threshold the LSD
// must not engage.
func TestLSDNeedsIterations(t *testing.T) {
	model := uarch.Core2()
	c := simProgram(t, model, bigLoop(0, 7, 40), nil)
	if c.LSDUops != 0 {
		t.Errorf("LSD engaged after only 40 iterations (LSDUops=%d)", c.LSDUops)
	}
}

// twoShortLoops nests two short-running loops so both back branches
// fall in the same PC>>5 bucket (or not, with padding) — the paper's
// III-C.g branch-alias scenario.
func twoShortLoops(padBetween int, outer int) string {
	// The inner loop runs exactly one iteration (trip count 1, the
	// paper's "iteration counts of 1 or 2"), so its back branch is
	// never taken — trivially predictable on its own counter, and
	// poison when sharing one with the always-taken outer branch.
	return `
	movl $` + itoa(outer) + `, %esi
	.p2align 5
.Louter:
	movl $1, %edx
.Linner:
	addl $1, %eax
	addl $2, %ebx
	decl %edx
	jne .Linner
` + pad(padBetween) + `
	decl %esi
	jne .Louter
	ret
`
}

// TestBranchPredictorAliasing reproduces the paper's predictor-alias
// effect: two short-running back branches in the same 32-byte bucket
// confuse each other's two-bit counters; separating them fixes it.
func TestBranchPredictorAliasing(t *testing.T) {
	model := noLSD()
	aliased := simProgram(t, model, twoShortLoops(0, 400), nil)
	separated := simProgram(t, model, twoShortLoops(24, 400), nil)

	if aliased.Mispredicts <= separated.Mispredicts {
		t.Errorf("aliased branches must mispredict more: %d vs %d",
			aliased.Mispredicts, separated.Mispredicts)
	}
	if aliased.Cycles <= separated.Cycles {
		t.Errorf("aliasing must cost cycles: %d vs %d", aliased.Cycles, separated.Cycles)
	}
}

// TestForwardingBandwidth reproduces the III-F observation: a value
// feeding three dependents in the same cycle exceeds the forwarding
// bandwidth (2 on the Core-2 model) and shows up as RS_FULL stalls.
func TestForwardingBandwidth(t *testing.T) {
	model := uarch.Core2()
	fanout := `
	movl $1000, %r9d
.Lloop:
	xorl %edi, %ebx
	subl %ebx, %ecx
	subl %ebx, %edx
	movl %ebx, %esi
	addl $1, %r8d
	decl %r9d
	jne .Lloop
	ret
`
	c := simProgram(t, model, fanout, nil)
	if c.FwdDelays == 0 {
		t.Errorf("three same-cycle consumers must exceed forwarding bandwidth")
	}

	// With bandwidth 3 (the Opteron setting) the stalls disappear.
	wide := uarch.Core2()
	wide.FwdBandwidth = 3
	c2 := simProgram(t, wide, fanout, nil)
	if c2.FwdDelays >= c.FwdDelays {
		t.Errorf("raising forwarding bandwidth must reduce delays: %d vs %d",
			c2.FwdDelays, c.FwdDelays)
	}
}

// TestPortPressure: a chain of lea instructions is port-0 bound on the
// Core-2 model but spreads on the Opteron model.
func TestPortPressure(t *testing.T) {
	body := `
	movl $2000, %ecx
.Lloop:
	leaq (%rdi,%rsi), %r8
	leaq (%rdi,%rsi,2), %r9
	leaq (%rdi,%rsi,4), %r10
	decl %ecx
	jne .Lloop
	ret
`
	core2 := simProgram(t, noLSD(), body, nil)
	if core2.PortConflict == 0 {
		t.Error("independent leas must conflict on port 0 (Core-2 model)")
	}
	opteron := simProgram(t, uarch.Opteron(), body, nil)
	if opteron.PortConflict >= core2.PortConflict {
		t.Errorf("symmetric ports must reduce lea conflicts: %d vs %d",
			opteron.PortConflict, core2.PortConflict)
	}
}

// TestCachePollutionAndNT reproduces the III-E.k inverse-prefetching
// effect: a streaming scan evicts a small working set; hinting the
// stream non-temporal confines it to one way and preserves the set.
func TestCachePollutionAndNT(t *testing.T) {
	// Working set: 8 lines re-read each iteration. Stream: a large
	// array marched through once per iteration.
	prog := func(nt bool) string {
		hint := ""
		if nt {
			hint = "\tprefetchnta (%rdx)\n"
		}
		return `
	movl $40, %r9d
.Louter:
	# touch the working set (8 lines at ws)
	leaq ws(%rip), %rcx
	movl $8, %r8d
.Lws:
	movq (%rcx), %rax
	addq $64, %rcx
	decl %r8d
	jne .Lws
	# stream through 256 lines
	leaq stream(%rip), %rdx
	movl $256, %r8d
.Lstream:
` + hint + `	movq (%rdx), %rax
	addq $64, %rdx
	decl %r8d
	jne .Lstream
	decl %r9d
	jne .Louter
	ret
`
	}
	wrap := func(body string) string {
		return body + "\t.data\nws:\n\t.zero 512\nstream:\n\t.zero 16384\n"
	}

	model := uarch.Core2()
	model.CacheSets = 8 // small cache so pollution matters
	model.CacheWays = 4

	polluted := simProgram(t, model, wrap(prog(false)), nil)
	protected := simProgram(t, model, wrap(prog(true)), nil)

	if protected.NTFills == 0 {
		t.Fatal("prefetchnta must mark non-temporal fills")
	}
	if protected.CacheMisses >= polluted.CacheMisses {
		t.Errorf("non-temporal hints must reduce misses: %d vs %d",
			protected.CacheMisses, polluted.CacheMisses)
	}
}

// TestPredictablePatterns: a long-running loop branch must be nearly
// perfectly predicted.
func TestPredictablePatterns(t *testing.T) {
	c := simProgram(t, noLSD(), `
	movl $1000, %ecx
.Lloop:
	decl %ecx
	jne .Lloop
	ret
`, nil)
	if c.CondBranches < 1000 {
		t.Fatalf("cond branches = %d", c.CondBranches)
	}
	if c.Mispredicts > 4 {
		t.Errorf("loop branch mispredicted %d times", c.Mispredicts)
	}
}

func TestCountersString(t *testing.T) {
	c := simProgram(t, uarch.Core2(), "\tnop\n\tret\n", nil)
	out := c.String()
	for _, want := range []string{"CPU_CYCLES", "INST_RETIRED", "LSD_UOPS", "RESOURCE_STALLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("counter output missing %s:\n%s", want, out)
		}
	}
	if c.Insts != 2 {
		t.Errorf("insts = %d, want 2", c.Insts)
	}
	cmp := FormatComparison([]string{"a", "b"}, []*Counters{c, c})
	if !strings.Contains(cmp, "CPU_CYCLES") {
		t.Error("FormatComparison output malformed")
	}
}

// TestMoreInstructionsMoreCycles: the simulator must be monotone in
// work for straight-line code.
func TestMoreInstructionsMoreCycles(t *testing.T) {
	small := simProgram(t, uarch.Core2(), pad(10)+"\tret\n", nil)
	large := simProgram(t, uarch.Core2(), pad(200)+"\tret\n", nil)
	if large.Cycles <= small.Cycles {
		t.Errorf("200 nops (%d cycles) must cost more than 10 (%d)",
			large.Cycles, small.Cycles)
	}
}
