// Package uarch defines the parameterized micro-architecture models
// the MAO reproduction measures against. Real Intel Core-2, AMD
// Opteron and Pentium 4 hardware (with their PMU counters) is not
// available to this implementation, so the repository substitutes a
// transparent timing model implementing exactly the mechanisms the
// paper attributes its performance effects to:
//
//   - a front end fetching 16-byte decode lines (III-C.e),
//   - the Loop Stream Detector with its 4-line / 64-iteration /
//     simple-branch conditions (III-C.f),
//   - branch-predictor tables indexed by PC>>5, so branches in the
//     same 32-byte bucket alias (III-C.g and Figure 1),
//   - asymmetric execution ports (lea on port 0 only, shifts on ports
//     0 and 5; III-F),
//   - a result-forwarding bandwidth limit that backs instructions up
//     in the reservation station, visible as RESOURCE_STALLS:RS_FULL
//     (III-F),
//   - non-temporal loads that replace a single cache way (III-E.k).
//
// Every parameter is explicit, so the parameter-detection framework of
// paper Section IV can rediscover them from timing alone.
package uarch

import (
	"mao/internal/x86"
)

// PortMask is a bit set of execution ports (bit i = port i).
type PortMask uint8

// Has reports whether port p is in the mask.
func (m PortMask) Has(p int) bool { return m&(1<<p) != 0 }

// Count returns the number of ports in the mask.
func (m PortMask) Count() int {
	c := 0
	for i := 0; i < 8; i++ {
		if m.Has(i) {
			c++
		}
	}
	return c
}

// ExecClass describes how one instruction executes: its latency in
// cycles and the ports it may issue to.
type ExecClass struct {
	Latency int
	Ports   PortMask
}

// CPUModel is the full parameter set of one simulated processor.
type CPUModel struct {
	Name string

	// Front end.
	DecodeLineBytes int // instruction-fetch/decode chunk (16)
	DecodeWidth     int // instructions decoded per cycle
	HasLSD          bool
	LSDMaxLines     int // max decode lines a streamed loop may span
	LSDMinIters     int // iterations before the LSD locks on

	// Branch prediction.
	BPIndexShift     uint // predictor index = (PC >> shift) & (size-1)
	BPTableSize      int  // power of two
	MispredictCycles int

	// Back end.
	IssueWidth   int
	RetireWidth  int
	RSSize       int // reservation-station entries
	ROBSize      int
	FwdBandwidth int // results forwardable per completion cycle

	// Memory.
	LoadLatency    int
	StoreLatency   int
	MemMissCycles  int // additional cycles on an L1 miss
	CacheWays      int // L1D associativity (for non-temporal modeling)
	CacheSets      int
	CacheLineBytes int

	// Classify returns the execution class of an instruction. A nil
	// Classify falls back to DefaultClassify.
	Classify func(in *x86.Inst) ExecClass
}

// Class returns the execution class of in under this model.
func (m *CPUModel) Class(in *x86.Inst) ExecClass {
	if m.Classify != nil {
		return m.Classify(in)
	}
	return DefaultClassify(in)
}

// Port masks used by the default classifier.
const (
	P0   PortMask = 1 << 0
	P1   PortMask = 1 << 1
	P2   PortMask = 1 << 2 // load
	P3   PortMask = 1 << 3 // store address/data
	P5   PortMask = 1 << 5
	PALU          = P0 | P1 | P5
)

// DefaultClassify is the Core-2-flavoured instruction classification:
// lea only on port 0, shifts on ports 0 and 5 (the paper's Section
// III-F observations), loads on port 2, stores on port 3.
func DefaultClassify(in *x86.Inst) ExecClass {
	switch in.Op {
	case x86.OpLEA:
		return ExecClass{1, P0}
	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		return ExecClass{1, P0 | P5}
	case x86.OpIMUL, x86.OpMUL:
		return ExecClass{3, P1}
	case x86.OpIDIV, x86.OpDIV:
		return ExecClass{22, P0}
	case x86.OpADDSS, x86.OpADDSD, x86.OpSUBSS, x86.OpSUBSD:
		return ExecClass{3, P1}
	case x86.OpMULSS, x86.OpMULSD:
		return ExecClass{5, P0}
	case x86.OpDIVSS, x86.OpDIVSD, x86.OpSQRTSS, x86.OpSQRTSD:
		return ExecClass{20, P0}
	case x86.OpCVTSI2SS, x86.OpCVTSI2SD, x86.OpCVTTSS2SI, x86.OpCVTTSD2SI,
		x86.OpCVTSS2SD, x86.OpCVTSD2SS:
		return ExecClass{4, P1}
	case x86.OpNOP, x86.OpPREFETCHNTA, x86.OpPREFETCHT0,
		x86.OpPREFETCHT1, x86.OpPREFETCHT2:
		return ExecClass{1, PALU}
	case x86.OpJMP, x86.OpJCC, x86.OpCALL, x86.OpRET:
		return ExecClass{1, P5}
	}
	if in.ReadsMemory() {
		return ExecClass{3, P2} // load-to-use through the L1
	}
	if in.WritesMemory() {
		return ExecClass{3, P3}
	}
	return ExecClass{1, PALU}
}

// Core2 returns the Intel Core-2-like model: 16-byte decode lines, an
// LSD with the paper's published conditions, PC>>5 predictor indexing,
// and forwarding bandwidth of 2.
func Core2() *CPUModel {
	return &CPUModel{
		Name:             "core2",
		DecodeLineBytes:  16,
		DecodeWidth:      4,
		HasLSD:           true,
		LSDMaxLines:      4,
		LSDMinIters:      64,
		BPIndexShift:     5,
		BPTableSize:      512,
		MispredictCycles: 15,
		IssueWidth:       4,
		RetireWidth:      4,
		RSSize:           32,
		ROBSize:          96,
		FwdBandwidth:     2,
		LoadLatency:      3,
		StoreLatency:     3,
		MemMissCycles:    35,
		CacheWays:        8,
		CacheSets:        64,
		CacheLineBytes:   64,
	}
}

// Opteron returns the AMD-like model: 3-wide decode with a larger
// 32-byte fetch window, no LSD, a differently indexed predictor, and
// forwarding bandwidth of 3 (result-forwarding stalls were an
// Intel-specific observation in the paper).
func Opteron() *CPUModel {
	return &CPUModel{
		Name:             "opteron",
		DecodeLineBytes:  32,
		DecodeWidth:      3,
		HasLSD:           false,
		BPIndexShift:     4,
		BPTableSize:      2048,
		MispredictCycles: 12,
		IssueWidth:       3,
		RetireWidth:      3,
		RSSize:           24,
		ROBSize:          72,
		FwdBandwidth:     3,
		LoadLatency:      3,
		StoreLatency:     3,
		MemMissCycles:    40,
		CacheWays:        2,
		CacheSets:        512,
		CacheLineBytes:   64,
		Classify:         opteronClassify,
	}
}

// opteronClassify gives the AMD model symmetric ALU ports (the port-0
// lea restriction was the paper's Intel observation).
func opteronClassify(in *x86.Inst) ExecClass {
	c := DefaultClassify(in)
	switch in.Op {
	case x86.OpLEA:
		c.Ports = PALU
	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		c.Ports = PALU
	}
	return c
}

// P4 returns a NetBurst-flavoured model: deep pipeline (large
// mispredict penalty), narrow decode — the platform on which the
// Nopinizer found its still-mysterious 4% (III-E.i).
func P4() *CPUModel {
	return &CPUModel{
		Name:             "p4",
		DecodeLineBytes:  16,
		DecodeWidth:      3,
		HasLSD:           false,
		BPIndexShift:     5,
		BPTableSize:      256,
		MispredictCycles: 24,
		IssueWidth:       3,
		RetireWidth:      3,
		RSSize:           16,
		ROBSize:          48,
		FwdBandwidth:     2,
		LoadLatency:      4,
		StoreLatency:     4,
		MemMissCycles:    45,
		CacheWays:        4,
		CacheSets:        32,
		CacheLineBytes:   64,
	}
}
