package exec

import (
	"fmt"
	"strconv"
	"strings"

	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/x86"
)

// Event is one dynamically executed instruction, in the form the
// timing simulator consumes.
type Event struct {
	Node *ir.Node
	Addr int64 // effective address (section base + relaxed offset)
	Len  int

	IsBranch     bool
	IsCondBranch bool
	Taken        bool
	Target       int64 // effective target address when taken

	HasLoad   bool
	LoadAddr  uint64
	HasStore  bool
	StoreAddr uint64
	AccessLen int

	// NonTemporal marks prefetchnta hint events; the cache model
	// restricts the named line to a single way.
	NonTemporal bool
}

// Sample is a register-file snapshot at one executed instruction, the
// input the SIMADDR pass multiplies (paper III-E.m): hardware PMU
// sampling delivers exactly this — an instruction address plus the
// register contents at that instant.
type Sample struct {
	Index int64 // dynamic instruction index
	Node  *ir.Node
	GPR   [16]uint64
}

// Config configures one execution.
type Config struct {
	Unit   *ir.Unit
	Layout *relax.Layout
	// Entry names the function to start in (required).
	Entry string
	// MaxInsts caps dynamic instructions (default 2,000,000).
	MaxInsts int64
	// InitRegs seeds argument registers before the run.
	InitRegs map[x86.Reg]uint64
	// CollectTrace gathers every Event into Result.Trace.
	CollectTrace bool
	// OnEvent, when set, streams events (independently of
	// CollectTrace).
	OnEvent func(Event)
	// SampleEvery takes a register snapshot every N instructions
	// (0 = no samples), emulating PMU-based sampling.
	SampleEvery int64
	// ExternalCalls makes calls to unknown symbols return
	// immediately with deterministic clobbers instead of failing.
	ExternalCalls bool
}

// Result is the outcome of a run.
type Result struct {
	Trace    []Event
	Samples  []Sample
	State    *State
	Executed int64
}

// machine is the executor's working set.
type machine struct {
	cfg    *Config
	state  *State
	layout *relax.Layout

	sectionBase map[string]int64
	nextInst    map[*ir.Node]*ir.Node // successor instruction per node
	labelFirst  map[string]*ir.Node   // first instruction at/after label
	byAddr      map[int64]*ir.Node    // effective address -> instruction
	symbols     map[string]int64      // label -> effective address

	executed int64
	res      *Result
}

// Run executes the unit from cfg.Entry until the entry function
// returns, MaxInsts is reached (an error), or the program faults.
func Run(cfg *Config) (*Result, error) {
	if cfg.Unit == nil || cfg.Layout == nil {
		return nil, fmt.Errorf("exec: Unit and Layout are required")
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000
	}
	m := &machine{
		cfg:    cfg,
		state:  NewState(),
		layout: cfg.Layout,
		res:    &Result{},
	}
	m.buildMaps()
	if err := m.initData(); err != nil {
		return nil, err
	}
	for r, v := range cfg.InitRegs {
		m.state.WriteReg(r, v)
	}

	entry := m.cfg.Unit.FindLabel(cfg.Entry)
	if entry == nil {
		return nil, fmt.Errorf("exec: entry %q not found", cfg.Entry)
	}
	cur := m.firstInstAfter(entry)
	if cur == nil {
		return nil, fmt.Errorf("exec: entry %q has no instructions", cfg.Entry)
	}

	// Plant the terminating return address.
	rsp := m.state.ReadReg(x86.RSP) - 8
	m.state.WriteReg(x86.RSP, rsp)
	m.state.WriteMem(rsp, retSentry, 8)

	for cur != nil {
		if m.executed >= cfg.MaxInsts {
			return m.res, fmt.Errorf("exec: instruction budget (%d) exhausted", cfg.MaxInsts)
		}
		next, err := m.step(cur)
		if err != nil {
			return m.res, fmt.Errorf("exec: at %v: %w", cur.Inst, err)
		}
		m.executed++
		if cfg.SampleEvery > 0 && m.executed%cfg.SampleEvery == 0 {
			m.res.Samples = append(m.res.Samples, Sample{
				Index: m.executed, Node: cur, GPR: m.state.GPR,
			})
		}
		cur = next
	}
	m.res.State = m.state
	m.res.Executed = m.executed
	return m.res, nil
}

// EffAddr returns a node's effective (based) address.
func (m *machine) effAddr(n *ir.Node) int64 {
	return m.sectionBase[n.Section] + m.layout.Addr(n)
}

func (m *machine) buildMaps() {
	u := m.cfg.Unit
	m.sectionBase = make(map[string]int64)
	next := int64(DataBase)
	for _, sec := range u.Sections() {
		if strings.HasPrefix(sec, ".text") {
			m.sectionBase[sec] = TextBase
			continue
		}
		m.sectionBase[sec] = next
		next += 0x100000
	}

	m.nextInst = make(map[*ir.Node]*ir.Node)
	m.labelFirst = make(map[string]*ir.Node)
	m.byAddr = make(map[int64]*ir.Node)
	m.symbols = make(map[string]int64)

	var prev *ir.Node
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeLabel {
			m.symbols[n.Label] = m.effAddr(n)
		}
		if n.Kind == ir.NodeInst {
			if prev != nil {
				m.nextInst[prev] = n
			}
			prev = n
			m.byAddr[m.effAddr(n)] = n
		}
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeLabel {
			m.labelFirst[n.Label] = n.NextInst()
		}
	}
}

// firstInstAfter returns the first instruction node at or after n.
func (m *machine) firstInstAfter(n *ir.Node) *ir.Node {
	if n.Kind == ir.NodeInst {
		return n
	}
	return n.NextInst()
}

// initData materializes data-section directives into memory, resolving
// label arguments (jump tables) to effective addresses.
func (m *machine) initData() error {
	u := m.cfg.Unit
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind != ir.NodeDirective || strings.HasPrefix(n.Section, ".text") {
			continue
		}
		addr := uint64(m.effAddr(n))
		d := n.Dir
		size := 0
		switch d.Name {
		case ".byte":
			size = 1
		case ".word", ".value", ".short":
			size = 2
		case ".long", ".int":
			size = 4
		case ".quad", ".8byte":
			size = 8
		default:
			continue // .zero/.skip stay zero; strings not needed by corpus
		}
		for _, arg := range d.Args {
			v, err := m.dataValue(arg)
			if err != nil {
				return fmt.Errorf("exec: %s: %v", d, err)
			}
			m.state.WriteMem(addr, v, size)
			addr += uint64(size)
		}
	}
	return nil
}

// dataValue evaluates a data-directive argument: integer, label, or
// label±offset.
func (m *machine) dataValue(arg string) (uint64, error) {
	arg = strings.TrimSpace(arg)
	if v, err := strconv.ParseInt(arg, 0, 64); err == nil {
		return uint64(v), nil
	}
	if u, err := strconv.ParseUint(arg, 0, 64); err == nil {
		return u, nil
	}
	// label or label±off
	sym := arg
	var off int64
	if i := strings.IndexAny(arg[1:], "+-"); i >= 0 {
		sym = arg[:i+1]
		v, err := strconv.ParseInt(arg[i+1:], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad data value %q", arg)
		}
		off = v
	}
	base, ok := m.symbols[sym]
	if !ok {
		return 0, fmt.Errorf("unknown symbol %q in data", sym)
	}
	return uint64(base + off), nil
}

// symbolAddr resolves a symbol to its effective address.
func (m *machine) symbolAddr(sym string) (int64, bool) {
	a, ok := m.symbols[sym]
	return a, ok
}

// memEffAddr computes the effective address of a memory operand.
func (m *machine) memEffAddr(mem x86.Mem) (uint64, error) {
	var addr int64
	if mem.Sym != "" {
		base, ok := m.symbolAddr(mem.Sym)
		if !ok {
			return 0, fmt.Errorf("unknown symbol %q", mem.Sym)
		}
		addr = base + mem.Disp
		if mem.IsRIPRel() {
			return uint64(addr), nil
		}
	} else {
		addr = mem.Disp
	}
	if mem.Base != x86.RegNone && mem.Base != x86.RIP {
		addr += int64(m.state.ReadReg(mem.Base))
	}
	if mem.Index != x86.RegNone {
		addr += int64(m.state.ReadReg(mem.Index)) * int64(mem.EffScale())
	}
	return uint64(addr), nil
}

// emit records one event.
func (m *machine) emit(ev Event) {
	if m.cfg.CollectTrace {
		m.res.Trace = append(m.res.Trace, ev)
	}
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(ev)
	}
}
