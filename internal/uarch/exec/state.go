// Package exec is MAO's functional x86-64 executor: it runs parsed
// assembly units directly on the IR (registers, flags, sparse memory)
// and produces the dynamic instruction traces, register snapshots and
// final architectural state that the timing simulator, the SIMADDR
// pass and the semantics-preservation property tests consume.
//
// The executor plays the role the authors' real silicon played: it
// provides ground-truth execution for compiler-generated code. It
// implements the same instruction subset as the parser/encoder.
package exec

import (
	"fmt"
	"sort"

	"mao/internal/x86"
)

// Section base addresses: each section is laid out by relaxation from
// offset 0; the executor places sections at disjoint bases.
const (
	TextBase  = 0x400000
	DataBase  = 0x600000
	StackTop  = 0x7fff0000
	retSentry = 0xdead0000 // return address terminating the run
)

const pageSize = 1 << 12

// State is the architectural state of the simulated machine.
type State struct {
	GPR   [16]uint64 // indexed by hardware register number
	XMM   [16]uint64 // low 64 bits only (scalar SSE subset)
	Flags x86.Flags

	pages map[uint64]*[pageSize]byte
}

// NewState returns a zeroed machine with an initialized stack pointer.
func NewState() *State {
	s := &State{pages: make(map[uint64]*[pageSize]byte)}
	s.GPR[x86.RSP.Num()] = StackTop
	return s
}

// Checksum returns an FNV-1a digest over the architectural state:
// every GPR and XMM register plus all touched memory. Flags are
// excluded — optimization passes legitimately change dead flag values.
// Two runs of semantically equivalent programs must produce equal
// checksums; the property tests rely on this.
func (s *State) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xFF)) * prime
			v >>= 8
		}
	}
	for _, v := range s.GPR {
		mix(v)
	}
	for _, v := range s.XMM {
		mix(v)
	}
	// Pages in deterministic (sorted) order.
	keys := make([]uint64, 0, len(s.pages))
	for k := range s.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		mix(k)
		for _, b := range s.pages[k] {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// Clone deep-copies the state (used by snapshot comparisons).
func (s *State) Clone() *State {
	c := *s
	c.pages = make(map[uint64]*[pageSize]byte, len(s.pages))
	for k, v := range s.pages {
		pg := *v
		c.pages[k] = &pg
	}
	return &c
}

func (s *State) page(addr uint64) *[pageSize]byte {
	k := addr / pageSize
	p := s.pages[k]
	if p == nil {
		p = new([pageSize]byte)
		s.pages[k] = p
	}
	return p
}

// ReadMem reads n bytes (1..8) little-endian.
func (s *State) ReadMem(addr uint64, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		v |= uint64(s.page(a)[a%pageSize]) << (8 * i)
	}
	return v
}

// WriteMem writes n bytes (1..8) little-endian.
func (s *State) WriteMem(addr uint64, v uint64, n int) {
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		s.page(a)[a%pageSize] = byte(v >> (8 * i))
	}
}

// ReadReg returns the register's value zero-extended to 64 bits.
func (s *State) ReadReg(r x86.Reg) uint64 {
	if r.IsXMM() {
		return s.XMM[r.Num()]
	}
	full := s.GPR[r.Family().Num()]
	switch r.Width() {
	case x86.W64:
		return full
	case x86.W32:
		return full & 0xFFFFFFFF
	case x86.W16:
		return full & 0xFFFF
	case x86.W8:
		if r.IsHighByte() {
			return (full >> 8) & 0xFF
		}
		return full & 0xFF
	}
	return full
}

// WriteReg writes v with x86 width semantics: 64-bit writes replace,
// 32-bit writes zero-extend, 16/8-bit writes merge.
func (s *State) WriteReg(r x86.Reg, v uint64) {
	if r.IsXMM() {
		s.XMM[r.Num()] = v
		return
	}
	n := r.Family().Num()
	switch r.Width() {
	case x86.W64:
		s.GPR[n] = v
	case x86.W32:
		s.GPR[n] = v & 0xFFFFFFFF
	case x86.W16:
		s.GPR[n] = s.GPR[n]&^uint64(0xFFFF) | v&0xFFFF
	case x86.W8:
		if r.IsHighByte() {
			s.GPR[n] = s.GPR[n]&^uint64(0xFF00) | (v&0xFF)<<8
		} else {
			s.GPR[n] = s.GPR[n]&^uint64(0xFF) | v&0xFF
		}
	}
}

// flag helpers ------------------------------------------------------------

func (s *State) setFlag(f x86.Flags, on bool) {
	if on {
		s.Flags |= f
	} else {
		s.Flags &^= f
	}
}

// GetFlag reports whether a flag bit is set.
func (s *State) GetFlag(f x86.Flags) bool { return s.Flags&f != 0 }

// CondHolds evaluates a condition code against the current flags.
func (s *State) CondHolds(c x86.Cond) bool {
	cf, zf := s.GetFlag(x86.CF), s.GetFlag(x86.ZF)
	sf, of, pf := s.GetFlag(x86.SF), s.GetFlag(x86.OF), s.GetFlag(x86.PF)
	switch c {
	case x86.CondO:
		return of
	case x86.CondNO:
		return !of
	case x86.CondB:
		return cf
	case x86.CondAE:
		return !cf
	case x86.CondE:
		return zf
	case x86.CondNE:
		return !zf
	case x86.CondBE:
		return cf || zf
	case x86.CondA:
		return !cf && !zf
	case x86.CondS:
		return sf
	case x86.CondNS:
		return !sf
	case x86.CondP:
		return pf
	case x86.CondNP:
		return !pf
	case x86.CondL:
		return sf != of
	case x86.CondGE:
		return sf == of
	case x86.CondLE:
		return zf || sf != of
	case x86.CondG:
		return !zf && sf == of
	}
	panic(fmt.Sprintf("exec: bad condition %v", c))
}

// width utilities ------------------------------------------------------------

func widthBits(w x86.Width) uint { return uint(w) * 8 }

// truncate masks v to the given width.
func truncate(v uint64, w x86.Width) uint64 {
	if w == x86.W64 {
		return v
	}
	return v & (1<<widthBits(w) - 1)
}

// signBit extracts the sign bit of a w-width value.
func signBit(v uint64, w x86.Width) bool {
	return v>>(widthBits(w)-1)&1 != 0
}

// signExtend extends a w-width value to 64 bits.
func signExtend(v uint64, w x86.Width) uint64 {
	if w == x86.W64 {
		return v
	}
	b := widthBits(w)
	return uint64(int64(v<<(64-b)) >> (64 - b))
}

// parity returns true when the low byte has even parity (PF semantics).
func parity(v uint64) bool {
	b := byte(v)
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b&1 == 0
}

// setSZP sets SF/ZF/PF from a w-width result.
func (s *State) setSZP(v uint64, w x86.Width) {
	v = truncate(v, w)
	s.setFlag(x86.SF, signBit(v, w))
	s.setFlag(x86.ZF, v == 0)
	s.setFlag(x86.PF, parity(v))
}
