package exec

import (
	"fmt"
	"math"
	"math/bits"

	"mao/internal/ir"
	"mao/internal/x86"
)

// readVal reads a w-width operand value, recording loads in ev.
func (m *machine) readVal(a x86.Operand, w x86.Width, ev *Event) (uint64, error) {
	switch a.Kind {
	case x86.KindImm:
		if a.Sym != "" {
			base, ok := m.symbolAddr(a.Sym)
			if !ok {
				return 0, fmt.Errorf("unknown symbol %q", a.Sym)
			}
			return truncate(uint64(base+a.Imm), w), nil
		}
		return truncate(uint64(a.Imm), w), nil
	case x86.KindReg:
		return m.state.ReadReg(a.Reg), nil
	case x86.KindMem:
		addr, err := m.memEffAddr(a.Mem)
		if err != nil {
			return 0, err
		}
		ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, addr, int(w)
		return m.state.ReadMem(addr, int(w)), nil
	}
	return 0, fmt.Errorf("unreadable operand %v", a)
}

// writeVal writes a w-width value to an operand, recording stores.
func (m *machine) writeVal(a x86.Operand, w x86.Width, v uint64, ev *Event) error {
	switch a.Kind {
	case x86.KindReg:
		m.state.WriteReg(a.Reg, truncate(v, w))
		return nil
	case x86.KindMem:
		addr, err := m.memEffAddr(a.Mem)
		if err != nil {
			return err
		}
		ev.HasStore, ev.StoreAddr, ev.AccessLen = true, addr, int(w)
		m.state.WriteMem(addr, truncate(v, w), int(w))
		return nil
	}
	return fmt.Errorf("unwritable operand %v", a)
}

// flag computations ---------------------------------------------------------

func (m *machine) flagsAdd(a, b, carry uint64, w x86.Width) uint64 {
	r := truncate(a+b+carry, w)
	s := m.state
	s.setFlag(x86.CF, r < truncate(a, w) || (carry == 1 && r == truncate(a, w)))
	s.setFlag(x86.OF, signBit(^(a^b)&(a^r), w))
	s.setFlag(x86.AF, (a^b^r)&0x10 != 0)
	s.setSZP(r, w)
	return r
}

func (m *machine) flagsSub(a, b, borrow uint64, w x86.Width) uint64 {
	a, b = truncate(a, w), truncate(b, w)
	r := truncate(a-b-borrow, w)
	s := m.state
	s.setFlag(x86.CF, a < b || (borrow == 1 && a == b))
	s.setFlag(x86.OF, signBit((a^b)&(a^r), w))
	s.setFlag(x86.AF, (a^b^r)&0x10 != 0)
	s.setSZP(r, w)
	return r
}

func (m *machine) flagsLogic(r uint64, w x86.Width) uint64 {
	r = truncate(r, w)
	s := m.state
	s.setFlag(x86.CF, false)
	s.setFlag(x86.OF, false)
	s.setFlag(x86.AF, false) // architecturally undefined; model as 0
	s.setSZP(r, w)
	return r
}

// step executes one instruction and returns the next one (nil = halt).
func (m *machine) step(n *ir.Node) (*ir.Node, error) {
	in := n.Inst
	s := m.state
	w := in.Width
	ev := Event{Node: n, Addr: m.effAddr(n), Len: m.layout.Len(n)}
	next := m.nextInst[n]

	// branchTo resolves a label target node.
	branchTo := func(sym string, off int64) (*ir.Node, error) {
		t, ok := m.labelFirst[sym]
		if !ok || t == nil {
			return nil, fmt.Errorf("branch to unknown label %q", sym)
		}
		if off != 0 {
			tn := m.byAddr[m.effAddr(t)+off]
			if tn == nil {
				return nil, fmt.Errorf("branch to %s%+d hits no instruction", sym, off)
			}
			t = tn
		}
		return t, nil
	}

	defer func() { m.emit(ev) }()

	switch in.Op {
	case x86.OpNOP, x86.OpPAUSE:
		// nothing
	case x86.OpPREFETCHNTA, x86.OpPREFETCHT0, x86.OpPREFETCHT1, x86.OpPREFETCHT2:
		if len(in.Args) == 1 && in.Args[0].Kind == x86.KindMem {
			addr, err := m.memEffAddr(in.Args[0].Mem)
			if err != nil {
				return nil, err
			}
			ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, addr, 0
			ev.NonTemporal = in.Op == x86.OpPREFETCHNTA
		}

	case x86.OpMOV, x86.OpMOVABS:
		v, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[1], w, v, &ev); err != nil {
			return nil, err
		}

	case x86.OpMOVZX:
		v, err := m.readVal(in.Args[0], in.SrcWidth, &ev)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[1], w, truncate(v, in.SrcWidth), &ev); err != nil {
			return nil, err
		}

	case x86.OpMOVSX:
		v, err := m.readVal(in.Args[0], in.SrcWidth, &ev)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[1], w, signExtend(truncate(v, in.SrcWidth), in.SrcWidth), &ev); err != nil {
			return nil, err
		}

	case x86.OpLEA:
		addr, err := m.memEffAddr(in.Args[0].Mem)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[1], w, addr, &ev); err != nil {
			return nil, err
		}

	case x86.OpADD, x86.OpADC, x86.OpSUB, x86.OpSBB, x86.OpCMP:
		src, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		if in.Args[0].Kind == x86.KindImm {
			src = truncate(signExtend(src, immWidth(in.Args[0], w)), w)
		}
		dst, err := m.readVal(in.Args[1], w, &ev)
		if err != nil {
			return nil, err
		}
		carry := uint64(0)
		if (in.Op == x86.OpADC || in.Op == x86.OpSBB) && s.GetFlag(x86.CF) {
			carry = 1
		}
		var r uint64
		if in.Op == x86.OpADD || in.Op == x86.OpADC {
			r = m.flagsAdd(dst, src, carry, w)
		} else {
			r = m.flagsSub(dst, src, carry, w)
		}
		if in.Op != x86.OpCMP {
			if err := m.writeVal(in.Args[1], w, r, &ev); err != nil {
				return nil, err
			}
		}

	case x86.OpAND, x86.OpOR, x86.OpXOR, x86.OpTEST:
		src, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		dst, err := m.readVal(in.Args[1], w, &ev)
		if err != nil {
			return nil, err
		}
		var r uint64
		switch in.Op {
		case x86.OpAND, x86.OpTEST:
			r = dst & src
		case x86.OpOR:
			r = dst | src
		case x86.OpXOR:
			r = dst ^ src
		}
		r = m.flagsLogic(r, w)
		if in.Op != x86.OpTEST {
			if err := m.writeVal(in.Args[1], w, r, &ev); err != nil {
				return nil, err
			}
		}

	case x86.OpNOT:
		v, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[0], w, ^v, &ev); err != nil {
			return nil, err
		}

	case x86.OpNEG:
		v, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		r := m.flagsSub(0, v, 0, w)
		if err := m.writeVal(in.Args[0], w, r, &ev); err != nil {
			return nil, err
		}

	case x86.OpINC, x86.OpDEC:
		v, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		cf := s.GetFlag(x86.CF)
		var r uint64
		if in.Op == x86.OpINC {
			r = m.flagsAdd(v, 1, 0, w)
		} else {
			r = m.flagsSub(v, 1, 0, w)
		}
		s.setFlag(x86.CF, cf) // inc/dec preserve CF
		if err := m.writeVal(in.Args[0], w, r, &ev); err != nil {
			return nil, err
		}

	case x86.OpIMUL, x86.OpMUL:
		if err := m.execMul(in, w, &ev); err != nil {
			return nil, err
		}

	case x86.OpIDIV, x86.OpDIV:
		if err := m.execDiv(in, w, &ev); err != nil {
			return nil, err
		}

	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		if err := m.execShift(in, w, &ev); err != nil {
			return nil, err
		}

	case x86.OpPUSH:
		v, err := m.readVal(in.Args[0], x86.W64, &ev)
		if err != nil {
			return nil, err
		}
		if in.Args[0].Kind == x86.KindImm {
			v = uint64(int64(in.Args[0].Imm))
		}
		rsp := s.ReadReg(x86.RSP) - 8
		s.WriteReg(x86.RSP, rsp)
		s.WriteMem(rsp, v, 8)
		ev.HasStore, ev.StoreAddr, ev.AccessLen = true, rsp, 8

	case x86.OpPOP:
		rsp := s.ReadReg(x86.RSP)
		v := s.ReadMem(rsp, 8)
		s.WriteReg(x86.RSP, rsp+8)
		ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, rsp, 8
		if err := m.writeVal(in.Args[0], x86.W64, v, &ev); err != nil {
			return nil, err
		}

	case x86.OpLEAVE:
		rbp := s.ReadReg(x86.RBP)
		s.WriteReg(x86.RSP, rbp)
		v := s.ReadMem(rbp, 8)
		ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, rbp, 8
		s.WriteReg(x86.RBP, v)
		s.WriteReg(x86.RSP, rbp+8)

	case x86.OpJMP:
		ev.IsBranch, ev.Taken = true, true
		t, err := m.branchTarget(in, &ev)
		if err != nil {
			return nil, err
		}
		next = t

	case x86.OpJCC:
		ev.IsBranch, ev.IsCondBranch = true, true
		if s.CondHolds(in.Cond) {
			ev.Taken = true
			t, err := branchTo(in.Args[0].Sym, in.Args[0].Off)
			if err != nil {
				return nil, err
			}
			ev.Target = m.effAddr(t)
			next = t
		}

	case x86.OpCALL:
		ev.IsBranch, ev.Taken = true, true
		ret := uint64(ev.Addr + int64(ev.Len))
		t, err := m.branchTarget(in, &ev)
		if err != nil {
			if m.cfg.ExternalCalls {
				m.externalCall(in)
				ev.Target = ev.Addr + int64(ev.Len)
				return next, nil
			}
			return nil, err
		}
		rsp := s.ReadReg(x86.RSP) - 8
		s.WriteReg(x86.RSP, rsp)
		s.WriteMem(rsp, ret, 8)
		ev.HasStore, ev.StoreAddr, ev.AccessLen = true, rsp, 8
		next = t

	case x86.OpRET:
		ev.IsBranch, ev.Taken = true, true
		rsp := s.ReadReg(x86.RSP)
		ret := s.ReadMem(rsp, 8)
		s.WriteReg(x86.RSP, rsp+8)
		ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, rsp, 8
		if ret == retSentry {
			next = nil
			break
		}
		t := m.byAddr[int64(ret)]
		if t == nil {
			return nil, fmt.Errorf("return to unmapped address %#x", ret)
		}
		ev.Target = int64(ret)
		next = t

	case x86.OpSET:
		v := uint64(0)
		if s.CondHolds(in.Cond) {
			v = 1
		}
		if err := m.writeVal(in.Args[0], x86.W8, v, &ev); err != nil {
			return nil, err
		}

	case x86.OpCMOV:
		if s.CondHolds(in.Cond) {
			v, err := m.readVal(in.Args[0], w, &ev)
			if err != nil {
				return nil, err
			}
			if err := m.writeVal(in.Args[1], w, v, &ev); err != nil {
				return nil, err
			}
		} else if w == x86.W32 && in.Args[1].Kind == x86.KindReg {
			// A 32-bit cmov zero-extends even when not taken.
			s.WriteReg(in.Args[1].Reg, s.ReadReg(in.Args[1].Reg))
		}

	case x86.OpCLTQ:
		s.WriteReg(x86.RAX, signExtend(s.ReadReg(x86.EAX), x86.W32))
	case x86.OpCWTL:
		s.WriteReg(x86.EAX, truncate(signExtend(s.ReadReg(x86.AX), x86.W16), x86.W32))
	case x86.OpCLTD:
		v := signExtend(s.ReadReg(x86.EAX), x86.W32)
		s.WriteReg(x86.EDX, truncate(v>>32, x86.W32))
	case x86.OpCQTO:
		if int64(s.ReadReg(x86.RAX)) < 0 {
			s.WriteReg(x86.RDX, ^uint64(0))
		} else {
			s.WriteReg(x86.RDX, 0)
		}

	case x86.OpXCHG:
		a, err := m.readVal(in.Args[0], w, &ev)
		if err != nil {
			return nil, err
		}
		b, err := m.readVal(in.Args[1], w, &ev)
		if err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[0], w, b, &ev); err != nil {
			return nil, err
		}
		if err := m.writeVal(in.Args[1], w, a, &ev); err != nil {
			return nil, err
		}

	default:
		if in.Op.IsSSE() {
			if err := m.execSSE(in, &ev); err != nil {
				return nil, err
			}
			break
		}
		return nil, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return next, nil
}

// immWidth returns the width an immediate was encoded at (for sign
// extension): ALU immediates are sign-extended imm8/imm32 to the
// operand width; the executor only needs "already full width".
func immWidth(a x86.Operand, w x86.Width) x86.Width { return w }

// branchTarget resolves jmp/call targets, direct or indirect.
func (m *machine) branchTarget(in *x86.Inst, ev *Event) (*ir.Node, error) {
	a := in.Args[0]
	if !a.Star {
		if a.Kind != x86.KindLabel {
			return nil, fmt.Errorf("bad branch operand %v", a)
		}
		t, ok := m.labelFirst[a.Sym]
		if !ok || t == nil {
			return nil, fmt.Errorf("branch to unknown label %q", a.Sym)
		}
		ev.Target = m.effAddr(t)
		return t, nil
	}
	// Indirect: *reg or *mem holds the target address.
	var target uint64
	switch a.Kind {
	case x86.KindReg:
		target = m.state.ReadReg(a.Reg)
	case x86.KindMem, x86.KindLabel:
		mem := a.Mem
		if a.Kind == x86.KindLabel {
			mem = x86.Mem{Sym: a.Sym, Disp: a.Off}
		}
		addr, err := m.memEffAddr(mem)
		if err != nil {
			return nil, err
		}
		ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, addr, 8
		target = m.state.ReadMem(addr, 8)
	}
	t := m.byAddr[int64(target)]
	if t == nil {
		return nil, fmt.Errorf("indirect branch to unmapped %#x", target)
	}
	ev.Target = int64(target)
	return t, nil
}

// externalCall models a call to an unknown symbol: caller-saved
// registers are clobbered deterministically (hash of the name) and
// flags are clobbered.
func (m *machine) externalCall(in *x86.Inst) {
	sym := ""
	if len(in.Args) == 1 {
		sym = in.Args[0].Sym
	}
	h := uint64(14695981039346656037)
	for _, c := range sym {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, r := range []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
		x86.R8, x86.R9, x86.R10, x86.R11} {
		m.state.WriteReg(r, h)
		h = h*2862933555777941757 + 3037000493
	}
	m.state.Flags = 0
}

// execMul implements imul (1/2/3 operands) and mul.
func (m *machine) execMul(in *x86.Inst, w x86.Width, ev *Event) error {
	s := m.state
	switch len(in.Args) {
	case 1:
		src, err := m.readVal(in.Args[0], w, ev)
		if err != nil {
			return err
		}
		a := truncate(s.ReadReg(x86.RAX), w)
		src = truncate(src, w)
		signedMul := in.Op == x86.OpIMUL

		// Full 128-bit product hi:lo. For widths below 64 the whole
		// product fits in lo.
		var lo, hi uint64
		if signedMul {
			sa, sb := signExtend(a, w), signExtend(src, w)
			hi, lo = bits.Mul64(sa, sb)
			if int64(sa) < 0 {
				hi -= sb
			}
			if int64(sb) < 0 {
				hi -= sa
			}
		} else {
			hi, lo = bits.Mul64(a, src)
		}

		var overflow bool
		switch w {
		case x86.W64:
			s.WriteReg(x86.RAX, lo)
			s.WriteReg(x86.RDX, hi)
			if signedMul {
				// Overflow unless hi is the sign extension of lo.
				sign := uint64(0)
				if int64(lo) < 0 {
					sign = ^uint64(0)
				}
				overflow = hi != sign
			} else {
				overflow = hi != 0
			}
		case x86.W32:
			s.WriteReg(x86.EAX, truncate(lo, x86.W32))
			s.WriteReg(x86.EDX, truncate(lo>>32, x86.W32))
		case x86.W16:
			s.WriteReg(x86.AX, truncate(lo, x86.W16))
			s.WriteReg(x86.DX, truncate(lo>>16, x86.W16))
		case x86.W8:
			s.WriteReg(x86.AX, truncate(lo, x86.W16))
		}
		if w != x86.W64 {
			if signedMul {
				overflow = signExtend(truncate(lo, w), w) != lo
			} else {
				overflow = lo>>widthBits(w) != 0
			}
		}
		s.setFlag(x86.CF, overflow)
		s.setFlag(x86.OF, overflow)
		s.setSZP(truncate(lo, w), w) // SF/ZF/PF architecturally undefined; model deterministically
		return nil
	case 2, 3:
		srcIdx, dstIdx := 0, 1
		var factor uint64
		if len(in.Args) == 3 {
			factor = truncate(uint64(in.Args[0].Imm), w)
			srcIdx, dstIdx = 1, 2
		}
		src, err := m.readVal(in.Args[srcIdx], w, ev)
		if err != nil {
			return err
		}
		var other uint64
		if len(in.Args) == 3 {
			other = factor
		} else {
			other, err = m.readVal(in.Args[dstIdx], w, ev)
			if err != nil {
				return err
			}
		}
		full := int64(signExtend(src, w)) * int64(signExtend(other, w))
		r := truncate(uint64(full), w)
		overflow := int64(signExtend(r, w)) != full
		s.setFlag(x86.CF, overflow)
		s.setFlag(x86.OF, overflow)
		s.setSZP(r, w)
		return m.writeVal(in.Args[dstIdx], w, r, ev)
	}
	return fmt.Errorf("bad imul arity %d", len(in.Args))
}

// execDiv implements div/idiv at all widths.
func (m *machine) execDiv(in *x86.Inst, w x86.Width, ev *Event) error {
	s := m.state
	d, err := m.readVal(in.Args[0], w, ev)
	if err != nil {
		return err
	}
	d = truncate(d, w)
	if d == 0 {
		return fmt.Errorf("division by zero")
	}
	signed := in.Op == x86.OpIDIV

	if w == x86.W64 {
		hi, lo := s.ReadReg(x86.RDX), s.ReadReg(x86.RAX)
		if signed {
			neg := int64(hi) < 0
			var q, r uint64
			// Only support numerators whose magnitude fits 64 bits
			// (the cqto-produced common case).
			if hi == 0 || hi == ^uint64(0) {
				n := int64(lo)
				if neg && n >= 0 || !neg && hi != 0 {
					return fmt.Errorf("idiv overflow")
				}
				q = uint64(n / int64(d))
				r = uint64(n % int64(d))
			} else {
				return fmt.Errorf("idiv numerator exceeds 64-bit magnitude")
			}
			s.WriteReg(x86.RAX, q)
			s.WriteReg(x86.RDX, r)
			return nil
		}
		if hi >= d {
			return fmt.Errorf("div overflow")
		}
		q, r := bits.Div64(hi, lo, d)
		s.WriteReg(x86.RAX, q)
		s.WriteReg(x86.RDX, r)
		return nil
	}

	// Narrow widths assemble the numerator in 64 bits.
	var num uint64
	bitsW := widthBits(w)
	switch w {
	case x86.W32:
		num = s.ReadReg(x86.EDX)<<32 | s.ReadReg(x86.EAX)
	case x86.W16:
		num = s.ReadReg(x86.DX)<<16 | s.ReadReg(x86.AX)
	case x86.W8:
		num = s.ReadReg(x86.AX)
	}
	var q, r uint64
	if signed {
		// The numerator is 2*w bits wide; recover it signed.
		sn := int64(num<<(64-2*bitsW)) >> (64 - 2*bitsW)
		sd := int64(signExtend(d, w))
		q = uint64(sn / sd)
		r = uint64(sn % sd)
		if int64(signExtend(truncate(q, w), w)) != sn/sd {
			return fmt.Errorf("idiv overflow")
		}
	} else {
		q = num / d
		r = num % d
		if q>>bitsW != 0 {
			return fmt.Errorf("div overflow")
		}
	}
	switch w {
	case x86.W32:
		s.WriteReg(x86.EAX, truncate(q, w))
		s.WriteReg(x86.EDX, truncate(r, w))
	case x86.W16:
		s.WriteReg(x86.AX, truncate(q, w))
		s.WriteReg(x86.DX, truncate(r, w))
	case x86.W8:
		s.WriteReg(x86.AL, truncate(q, w))
		s.WriteReg(x86.AH, truncate(r, w))
	}
	return nil
}

// execShift implements shifts and rotates with x86 count masking.
func (m *machine) execShift(in *x86.Inst, w x86.Width, ev *Event) error {
	s := m.state
	dst := in.Args[len(in.Args)-1]
	var count uint64 = 1
	if len(in.Args) == 2 {
		c, err := m.readVal(in.Args[0], x86.W8, ev)
		if err != nil {
			return err
		}
		count = c
	}
	mask := uint64(31)
	if w == x86.W64 {
		mask = 63
	}
	count &= mask
	v, err := m.readVal(dst, w, ev)
	if err != nil {
		return err
	}
	v = truncate(v, w)
	if count == 0 {
		return nil // no flags change, no write needed (value unchanged)
	}
	bitsW := widthBits(w)
	var r uint64
	switch in.Op {
	case x86.OpSHL:
		r = truncate(v<<count, w)
		s.setFlag(x86.CF, count <= uint64(bitsW) && v>>(uint64(bitsW)-count)&1 != 0)
		s.setFlag(x86.OF, signBit(r, w) != s.GetFlag(x86.CF))
		s.setSZP(r, w)
	case x86.OpSHR:
		r = v >> count
		s.setFlag(x86.CF, v>>(count-1)&1 != 0)
		s.setFlag(x86.OF, signBit(v, w))
		s.setSZP(r, w)
	case x86.OpSAR:
		r = truncate(uint64(int64(signExtend(v, w))>>count), w)
		s.setFlag(x86.CF, v>>(count-1)&1 != 0)
		s.setFlag(x86.OF, false)
		s.setSZP(r, w)
	case x86.OpROL:
		c := count % uint64(bitsW)
		r = truncate(v<<c|v>>(uint64(bitsW)-c), w)
		s.setFlag(x86.CF, r&1 != 0)
		s.setFlag(x86.OF, signBit(r, w) != s.GetFlag(x86.CF))
	case x86.OpROR:
		c := count % uint64(bitsW)
		r = truncate(v>>c|v<<(uint64(bitsW)-c), w)
		s.setFlag(x86.CF, signBit(r, w))
		s.setFlag(x86.OF, signBit(r, w) != signBit(r<<1|r>>(uint64(bitsW)-1), w))
	}
	return m.writeVal(dst, w, r, ev)
}

// execSSE implements the scalar SSE subset. XMM registers model their
// low 64 bits; packed moves copy those 64 bits (an explicit
// approximation — the corpus uses packed moves only for register
// copies and spills of scalar values).
func (m *machine) execSSE(in *x86.Inst, ev *Event) error {
	s := m.state

	readBits := func(a x86.Operand, n int) (uint64, error) {
		switch a.Kind {
		case x86.KindReg:
			if a.Reg.IsXMM() {
				return s.XMM[a.Reg.Num()], nil
			}
			return s.ReadReg(a.Reg), nil
		case x86.KindMem:
			addr, err := m.memEffAddr(a.Mem)
			if err != nil {
				return 0, err
			}
			ev.HasLoad, ev.LoadAddr, ev.AccessLen = true, addr, n
			return s.ReadMem(addr, n), nil
		}
		return 0, fmt.Errorf("bad SSE operand %v", a)
	}
	writeBits := func(a x86.Operand, v uint64, n int) error {
		switch a.Kind {
		case x86.KindReg:
			if a.Reg.IsXMM() {
				if n == 4 {
					v &= 0xFFFFFFFF
				}
				s.XMM[a.Reg.Num()] = v
				return nil
			}
			s.WriteReg(a.Reg, truncate(v, x86.Width(n)))
			return nil
		case x86.KindMem:
			addr, err := m.memEffAddr(a.Mem)
			if err != nil {
				return err
			}
			ev.HasStore, ev.StoreAddr, ev.AccessLen = true, addr, n
			s.WriteMem(addr, v, n)
			return nil
		}
		return fmt.Errorf("bad SSE operand %v", a)
	}

	f32 := func(bits64 uint64) float64 { return float64(math.Float32frombits(uint32(bits64))) }
	to32 := func(f float64) uint64 { return uint64(math.Float32bits(float32(f))) }

	switch in.Op {
	case x86.OpMOVSS, x86.OpMOVD:
		v, err := readBits(in.Args[0], 4)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], v, 4)
	case x86.OpMOVSD, x86.OpMOVQX, x86.OpMOVAPS, x86.OpMOVUPS,
		x86.OpMOVDQA, x86.OpMOVDQU:
		v, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], v, 8)

	case x86.OpADDSS, x86.OpSUBSS, x86.OpMULSS, x86.OpDIVSS:
		a, err := readBits(in.Args[0], 4)
		if err != nil {
			return err
		}
		b := s.XMM[in.Args[1].Reg.Num()]
		fa, fb := f32(a), f32(b)
		var r float64
		switch in.Op {
		case x86.OpADDSS:
			r = fb + fa
		case x86.OpSUBSS:
			r = fb - fa
		case x86.OpMULSS:
			r = fb * fa
		case x86.OpDIVSS:
			r = fb / fa
		}
		return writeBits(in.Args[1], to32(r), 4)

	case x86.OpADDSD, x86.OpSUBSD, x86.OpMULSD, x86.OpDIVSD:
		a, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		b := s.XMM[in.Args[1].Reg.Num()]
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		var r float64
		switch in.Op {
		case x86.OpADDSD:
			r = fb + fa
		case x86.OpSUBSD:
			r = fb - fa
		case x86.OpMULSD:
			r = fb * fa
		case x86.OpDIVSD:
			r = fb / fa
		}
		return writeBits(in.Args[1], math.Float64bits(r), 8)

	case x86.OpSQRTSS:
		a, err := readBits(in.Args[0], 4)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], to32(math.Sqrt(f32(a))), 4)
	case x86.OpSQRTSD:
		a, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], math.Float64bits(math.Sqrt(math.Float64frombits(a))), 8)

	case x86.OpXORPS, x86.OpXORPD, x86.OpPXOR, x86.OpANDPS, x86.OpANDPD:
		a, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		b := s.XMM[in.Args[1].Reg.Num()]
		if in.Op == x86.OpANDPS || in.Op == x86.OpANDPD {
			return writeBits(in.Args[1], b&a, 8)
		}
		return writeBits(in.Args[1], b^a, 8)

	case x86.OpUCOMISS, x86.OpCOMISS, x86.OpUCOMISD, x86.OpCOMISD:
		n := 8
		if in.Op == x86.OpUCOMISS || in.Op == x86.OpCOMISS {
			n = 4
		}
		a, err := readBits(in.Args[0], n)
		if err != nil {
			return err
		}
		b := s.XMM[in.Args[1].Reg.Num()]
		var fa, fb float64
		if n == 4 {
			fa, fb = f32(a), f32(b)
		} else {
			fa, fb = math.Float64frombits(a), math.Float64frombits(b)
		}
		// comis: dst(arg2) compared with src(arg1): result of fb ? fa.
		zf, pf, cf := false, false, false
		switch {
		case math.IsNaN(fa) || math.IsNaN(fb):
			zf, pf, cf = true, true, true
		case fb == fa:
			zf = true
		case fb < fa:
			cf = true
		}
		s.setFlag(x86.ZF, zf)
		s.setFlag(x86.PF, pf)
		s.setFlag(x86.CF, cf)
		s.setFlag(x86.OF, false)
		s.setFlag(x86.SF, false)
		s.setFlag(x86.AF, false)
		return nil

	case x86.OpCVTSI2SS:
		v, err := m.readVal(in.Args[0], gprWidth(in, x86.W32), ev)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], to32(float64(int64(signExtend(v, gprWidth(in, x86.W32))))), 4)
	case x86.OpCVTSI2SD:
		v, err := m.readVal(in.Args[0], gprWidth(in, x86.W32), ev)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], math.Float64bits(float64(int64(signExtend(v, gprWidth(in, x86.W32))))), 8)
	case x86.OpCVTTSS2SI:
		a, err := readBits(in.Args[0], 4)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], uint64(int64(f32(a))), dstGPRBytes(in))
	case x86.OpCVTTSD2SI:
		a, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], uint64(int64(math.Float64frombits(a))), dstGPRBytes(in))
	case x86.OpCVTSS2SD:
		a, err := readBits(in.Args[0], 4)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], math.Float64bits(f32(a)), 8)
	case x86.OpCVTSD2SS:
		a, err := readBits(in.Args[0], 8)
		if err != nil {
			return err
		}
		return writeBits(in.Args[1], to32(math.Float64frombits(a)), 4)
	}
	return fmt.Errorf("unimplemented SSE opcode %v", in.Op)
}

// gprWidth returns the GPR width of a cvtsi2xx source.
func gprWidth(in *x86.Inst, def x86.Width) x86.Width {
	if in.Width != x86.W0 {
		return in.Width
	}
	if in.Args[0].Kind == x86.KindReg && in.Args[0].Reg.IsGPR() {
		return in.Args[0].Reg.Width()
	}
	return def
}

// dstGPRBytes returns the byte width of a cvt destination GPR.
func dstGPRBytes(in *x86.Inst) int {
	if in.Args[1].Kind == x86.KindReg && in.Args[1].Reg.IsGPR() {
		return int(in.Args[1].Reg.Width())
	}
	return 4
}
