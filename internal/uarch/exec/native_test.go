package exec

// Differential testing against the host CPU. When gcc is available
// (and the host is linux/amd64), every program below is assembled and
// executed natively, and the returned rax is compared with this
// package's executor. This pins the executor's semantics to real
// silicon the same way the encoder is pinned to gas.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mao/internal/x86"
)

// nativePrograms are bodies of a function uint64 f(uint64 rdi,
// uint64 rsi). They must be self-contained (no external calls, no
// global data — the native harness links them standalone).
var nativePrograms = []struct {
	name string
	body string
	args [][2]uint64 // nil = defaultArgs
}{
	{"add_chain", `
	movq %rdi, %rax
	addq %rsi, %rax
	addl $100000, %eax
	addw $12, %ax
	addb $7, %al
	ret
`, nil},
	{"sub_borrow", `
	movq %rdi, %rax
	subq %rsi, %rax
	sbbq $0, %rax
	ret
`, nil},
	{"adc_carry", `
	movq $-1, %rax
	addq %rdi, %rax
	movq $0, %rax
	adcq $0, %rax
	ret
`, nil},
	{"flags_dance", `
	xorl %eax, %eax
	cmpq %rsi, %rdi
	setb %al
	cmpq %rdi, %rsi
	adcl $10, %eax
	ret
`, nil},
	{"mul_imul", `
	movq %rdi, %rax
	imulq %rsi, %rax
	imull $37, %eax, %ecx
	movslq %ecx, %rax
	ret
`, nil},
	{"mul_wide", `
	movq %rdi, %rax
	mulq %rsi
	addq %rdx, %rax
	ret
`, nil},
	{"div_mod", `
	movq %rdi, %rax
	cqto
	idivq %rsi
	imulq $1000, %rdx, %rdx
	addq %rdx, %rax
	ret
`, [][2]uint64{{0, 1}, {1, 2}, {7, 3}, {100, 100}, {0xFFFFFFFF, 7},
		{1 << 33, 3}, {12345678901, 987654321}, {^uint64(0), 2}}},
	{"shifts", `
	movq %rdi, %rax
	shlq $5, %rax
	shrq $2, %rax
	sarq $1, %rax
	movq %rsi, %rcx
	andb $15, %cl
	shlq %cl, %rax
	rolq $7, %rax
	rorq $3, %rax
	ret
`, nil},
	{"widths", `
	movq $-1, %rax
	movl %edi, %eax
	movw %si, %ax
	movb $0x5a, %ah
	movzbl %al, %ecx
	movsbq %al, %rdx
	addq %rcx, %rax
	addq %rdx, %rax
	ret
`, nil},
	{"inc_dec_cf", `
	movq $-1, %rax
	addq $1, %rax
	incq %rax
	movq $0, %rax
	adcq $0, %rax
	ret
`, nil},
	{"neg_not", `
	movq %rdi, %rax
	negq %rax
	notq %rax
	negl %eax
	ret
`, nil},
	{"cmov_sets", `
	xorl %eax, %eax
	cmpq %rsi, %rdi
	cmovaq %rdi, %rax
	cmovbeq %rsi, %rax
	setg %cl
	movzbl %cl, %ecx
	leaq (%rax,%rcx,2), %rax
	ret
`, nil},
	{"loop_sum", `
	xorl %eax, %eax
	movl $100, %ecx
.Lt:
	addq %rcx, %rax
	decl %ecx
	jne .Lt
	ret
`, nil},
	{"nested_loops", `
	xorl %eax, %eax
	movl $10, %ecx
.Louter:
	movl $10, %edx
.Linner:
	addl $1, %eax
	decl %edx
	jne .Linner
	decl %ecx
	jne .Louter
	ret
`, nil},
	{"stack_frame", `
	push %rbp
	mov %rsp, %rbp
	subq $16, %rsp
	movq %rdi, -8(%rbp)
	movq %rsi, -16(%rbp)
	movq -8(%rbp), %rax
	addq -16(%rbp), %rax
	leave
	ret
`, nil},
	{"push_pop", `
	pushq %rdi
	pushq $12345
	popq %rax
	popq %rcx
	addq %rcx, %rax
	ret
`, nil},
	{"lea_math", `
	leaq (%rdi,%rsi,4), %rax
	leaq 7(%rax,%rax,2), %rax
	leal 2(%edi), %ecx
	addq %rcx, %rax
	ret
`, nil},
	{"cltq_cqto", `
	movl %edi, %eax
	cltq
	cqto
	xorq %rdx, %rax
	ret
`, nil},
	{"parity_check", `
	movq %rdi, %rax
	andl $255, %eax
	testb %al, %al
	setp %cl
	movzbl %cl, %ecx
	leaq (%rax,%rcx,8), %rax
	ret
`, nil},
	{"xchg_regs", `
	movq %rdi, %rax
	movq %rsi, %rcx
	xchgq %rax, %rcx
	subq %rcx, %rax
	ret
`, nil},
	{"sse_roundtrip", `
	cvtsi2sdq %rdi, %xmm0
	cvtsi2sdq %rsi, %xmm1
	addsd %xmm1, %xmm0
	mulsd %xmm0, %xmm0
	sqrtsd %xmm0, %xmm0
	cvttsd2si %xmm0, %rax
	ret
`, nil},
	{"sse_compare", `
	cvtsi2sdq %rdi, %xmm0
	cvtsi2sdq %rsi, %xmm1
	xorl %eax, %eax
	ucomisd %xmm1, %xmm0
	seta %al
	ret
`, nil},
	{"zext_idiom", `
	andl $255, %edi
	mov %edi, %edi
	movq %rdi, %rax
	ret
`, nil},
	{"redundant_test", `
	movq %rdi, %r15
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movl $7, %eax
	ret
.Lz:
	movl $9, %eax
	ret
`, nil},
	{"paper_fig1_style", `
	push %rbx
	xorl %eax, %eax
	xorl %ecx, %ecx
.L3:
	movq %rcx, %rbx
	andl $7, %ebx
	addq %rbx, %rax
	addq $1, %rcx
	cmpq %rdi, %rcx
	jl .L3
	pop %rbx
	ret
`, [][2]uint64{{0, 0}, {1, 0}, {7, 0}, {64, 0}, {1000, 0}}},
	{"div_narrow", `
	movl %edi, %eax
	cltd
	movl %esi, %ecx
	idivl %ecx
	movzwl %dx, %edx
	shlq $32, %rdx
	orq %rdx, %rax
	movzbl %al, %eax
	ret
`, [][2]uint64{{100, 7}, {1, 2}, {255, 3}, {1000000, 999}}},
	{"div_word", `
	movl %edi, %eax
	xorl %edx, %edx
	movw %si, %cx
	divw %cx
	movzwl %ax, %eax
	ret
`, [][2]uint64{{100, 7}, {9, 2}, {50000, 3}, {1234, 57}}},
	{"div_byte", `
	movzwl %di, %eax
	movb %sil, %cl
	divb %cl
	movzbl %al, %eax
	ret
`, [][2]uint64{{100, 7}, {9, 2}, {200, 3}, {254, 255}}},
	{"rot_flags", `
	movq %rdi, %rax
	rolq $1, %rax
	setc %cl
	rorq $3, %rax
	adcq $0, %rax
	movzbl %cl, %ecx
	addq %rcx, %rax
	ret
`, nil},
	{"sbb_adc_chain", `
	movq %rdi, %rax
	cmpq %rsi, %rax
	sbbq %rdx, %rdx
	cmpq %rax, %rsi
	adcq %rdx, %rax
	ret
`, nil},
	{"byte_memory", `
	push %rbp
	mov %rsp, %rbp
	subq $16, %rsp
	movb $0x12, -1(%rbp)
	movw $0x3456, -4(%rbp)
	movzbl -1(%rbp), %eax
	movzwl -4(%rbp), %ecx
	shlq $16, %rax
	orq %rcx, %rax
	leave
	ret
`, nil},
}

var defaultArgs = [][2]uint64{
	{0, 0}, {1, 2}, {7, 3}, {100, 100},
	{0xFFFFFFFF, 1}, {1 << 33, 3}, {12345678901, 987654321},
	{^uint64(0), 2}, {5, ^uint64(0) - 2},
}

// argsFor returns the argument set for a program: loop programs need
// small trip counts (the executor has an instruction budget) and
// division needs nonzero divisors.
func argsFor(name string, override [][2]uint64) [][2]uint64 {
	if override != nil {
		return override
	}
	return defaultArgs
}

// nativeResults runs all programs natively via gcc once and returns
// results[prog][argIdx].
func nativeResults(t *testing.T) map[string][]uint64 {
	t.Helper()
	gcc, err := exec.LookPath("gcc")
	if err != nil || runtime.GOOS != "linux" || runtime.GOARCH != "amd64" {
		t.Skip("native differential testing needs gcc on linux/amd64")
	}
	dir := t.TempDir()

	var asmSrc strings.Builder
	asmSrc.WriteString("\t.text\n")
	for _, p := range nativePrograms {
		// Prefix labels to keep them unique across programs.
		body := strings.ReplaceAll(p.body, ".L", ".L"+p.name+"_")
		fmt.Fprintf(&asmSrc, "\t.globl %s\n\t.type %s,@function\n%s:\n%s\t.size %s,.-%s\n",
			p.name, p.name, p.name, body, p.name, p.name)
	}
	if err := os.WriteFile(filepath.Join(dir, "progs.s"), []byte(asmSrc.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var cSrc strings.Builder
	cSrc.WriteString("#include <stdio.h>\n#include <stdint.h>\n")
	for _, p := range nativePrograms {
		fmt.Fprintf(&cSrc, "extern uint64_t %s(uint64_t, uint64_t);\n", p.name)
	}
	cSrc.WriteString("int main(void) {\n")
	for _, p := range nativePrograms {
		args := argsFor(p.name, p.args)
		fmt.Fprintf(&cSrc, "{ uint64_t args[][2] = {")
		for _, a := range args {
			fmt.Fprintf(&cSrc, "{%dULL,%dULL},", a[0], a[1])
		}
		fmt.Fprintf(&cSrc, "};\n")
		fmt.Fprintf(&cSrc,
			"for (unsigned i = 0; i < %d; i++) printf(\"%s %%u %%llu\\n\", i, (unsigned long long)%s(args[i][0], args[i][1])); }\n",
			len(args), p.name, p.name)
	}
	cSrc.WriteString("return 0;\n}\n")
	if err := os.WriteFile(filepath.Join(dir, "main.c"), []byte(cSrc.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "harness")
	if out, err := exec.Command(gcc, "-o", bin,
		filepath.Join(dir, "main.c"), filepath.Join(dir, "progs.s")).CombinedOutput(); err != nil {
		t.Fatalf("gcc: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).Output()
	if err != nil {
		t.Fatalf("native run: %v", err)
	}

	results := make(map[string][]uint64)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var name string
		var idx int
		var val uint64
		parts := strings.Fields(line)
		if len(parts) != 3 {
			t.Fatalf("bad native output line %q", line)
		}
		name = parts[0]
		idx, _ = strconv.Atoi(parts[1])
		val, _ = strconv.ParseUint(parts[2], 10, 64)
		for len(results[name]) <= idx {
			results[name] = append(results[name], 0)
		}
		results[name][idx] = val
	}
	return results
}

func TestDifferentialAgainstNative(t *testing.T) {
	native := nativeResults(t)
	for _, p := range nativePrograms {
		for i, a := range argsFor(p.name, p.args) {
			res, err := tryRun(p.body, map[x86.Reg]uint64{
				x86.RDI: a[0], x86.RSI: a[1],
			})
			if err != nil {
				t.Errorf("%s(args[%d]): executor error: %v", p.name, i, err)
				continue
			}
			got := res.State.ReadReg(x86.RAX)
			want := native[p.name][i]
			if got != want {
				t.Errorf("%s(%d, %d): executor=%#x native=%#x",
					p.name, a[0], a[1], got, want)
			}
		}
	}
}
