package exec

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/x86"
)

// run executes a function body with the given initial registers and
// returns the result.
func run(t *testing.T, body string, init map[x86.Reg]uint64) *Result {
	t.Helper()
	res, err := tryRun(body, init)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func tryRun(body string, init map[x86.Reg]uint64) (*Result, error) {
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		return nil, err
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, err
	}
	return Run(&Config{
		Unit: u, Layout: layout, Entry: "f",
		InitRegs: init, CollectTrace: true,
	})
}

func rax(res *Result) uint64 { return res.State.ReadReg(x86.RAX) }

func TestBasicArithmetic(t *testing.T) {
	cases := []struct {
		body string
		init map[x86.Reg]uint64
		want uint64
	}{
		{"\tmovl $5, %eax\n\taddl $3, %eax\n\tret\n", nil, 8},
		{"\tmovq $-1, %rax\n\tret\n", nil, ^uint64(0)},
		{"\tmovl $-1, %eax\n\tret\n", nil, 0xFFFFFFFF}, // 32-bit zero-extends
		{"\tmovq %rdi, %rax\n\tsubq %rsi, %rax\n\tret\n",
			map[x86.Reg]uint64{x86.RDI: 100, x86.RSI: 42}, 58},
		{"\tmovl $6, %eax\n\timull $7, %eax, %eax\n\tret\n", nil, 42},
		{"\tmovq %rdi, %rax\n\tnegq %rax\n\tret\n",
			map[x86.Reg]uint64{x86.RDI: 5}, uint64(1<<64 - 5)},
		{"\tmovl $0xff, %eax\n\tnotl %eax\n\tret\n", nil, 0xFFFFFF00},
		{"\tmovl $12, %eax\n\tandl $10, %eax\n\tret\n", nil, 8},
		{"\tmovl $12, %eax\n\torl $3, %eax\n\tret\n", nil, 15},
		{"\tmovl $0b1010, %eax\n\txorl $0b0110, %eax\n\tret\n", nil, 0b1100},
		{"\tmovl $1, %eax\n\tshll $4, %eax\n\tret\n", nil, 16},
		{"\tmovl $-16, %eax\n\tsarl $2, %eax\n\tret\n", nil, 0xFFFFFFFC},
		{"\tmovl $16, %eax\n\tshrl $2, %eax\n\tret\n", nil, 4},
		{"\tmovb $200, %al\n\taddb $100, %al\n\tret\n", nil, 44}, // 8-bit wrap
		{"\tmovl $7, %eax\n\tincl %eax\n\tdecl %eax\n\tdecl %eax\n\tret\n", nil, 6},
		{"\tleaq 5(%rdi,%rsi,4), %rax\n\tret\n",
			map[x86.Reg]uint64{x86.RDI: 100, x86.RSI: 3}, 117},
		{"\tmovl $10, %eax\n\tcltq\n\tret\n", nil, 10},
		{"\tmovl $-10, %eax\n\tcltq\n\tret\n", nil, uint64(1<<64 - 10)},
		{"\txchgq %rdi, %rax\n\tret\n", map[x86.Reg]uint64{x86.RDI: 9}, 9},
	}
	for _, c := range cases {
		res := run(t, c.body, c.init)
		if got := rax(res); got != c.want {
			t.Errorf("body %q => rax=%#x, want %#x", c.body, got, c.want)
		}
	}
}

func TestMovWidthSemantics(t *testing.T) {
	// Writing a 32-bit register zeroes the upper half; 16/8-bit writes merge.
	res := run(t, `
	movq $-1, %rax
	movl $5, %eax
	ret
`, nil)
	if got := rax(res); got != 5 {
		t.Errorf("32-bit write must zero-extend; rax=%#x", got)
	}
	res = run(t, `
	movq $-1, %rax
	movw $5, %ax
	ret
`, nil)
	if got := rax(res); got != 0xFFFFFFFFFFFF0005 {
		t.Errorf("16-bit write must merge; rax=%#x", got)
	}
	res = run(t, `
	movq $0, %rax
	movb $7, %ah
	ret
`, nil)
	if got := rax(res); got != 0x700 {
		t.Errorf("high-byte write; rax=%#x", got)
	}
}

func TestMovZXSX(t *testing.T) {
	res := run(t, "\tmovq $0xff80, %rdi\n\tmovzbl %dil, %eax\n\tret\n", nil)
	if rax(res) != 0x80 {
		t.Errorf("movzbl => %#x", rax(res))
	}
	res = run(t, "\tmovq $0xff80, %rdi\n\tmovsbl %dil, %eax\n\tret\n", nil)
	if rax(res) != 0xFFFFFF80 {
		t.Errorf("movsbl => %#x", rax(res))
	}
	res = run(t, "\tmovl $-2, %edi\n\tmovslq %edi, %rax\n\tret\n", nil)
	if rax(res) != ^uint64(1) {
		t.Errorf("movslq => %#x", rax(res))
	}
}

func TestDivision(t *testing.T) {
	res := run(t, `
	movl $100, %eax
	cltd
	movl $7, %ecx
	idivl %ecx
	ret
`, nil)
	if rax(res) != 14 || res.State.ReadReg(x86.EDX) != 2 {
		t.Errorf("idiv: q=%d r=%d", rax(res), res.State.ReadReg(x86.EDX))
	}
	res = run(t, `
	movl $-100, %eax
	cltd
	movl $7, %ecx
	idivl %ecx
	ret
`, nil)
	if int32(rax(res)) != -14 || int32(res.State.ReadReg(x86.EDX)) != -2 {
		t.Errorf("signed idiv: q=%d r=%d", int32(rax(res)), int32(res.State.ReadReg(x86.EDX)))
	}
	res = run(t, `
	movq $1000000000000, %rax
	cqto
	movq $1000000, %rcx
	idivq %rcx
	ret
`, nil)
	if rax(res) != 1000000 {
		t.Errorf("64-bit idiv: %d", rax(res))
	}
	if _, err := tryRun("\txorl %ecx, %ecx\n\tmovl $1, %eax\n\tcltd\n\tidivl %ecx\n\tret\n", nil); err == nil {
		t.Error("division by zero must fault")
	}
}

func TestMulWide(t *testing.T) {
	res := run(t, `
	movl $100000, %eax
	movl $100000, %ecx
	mull %ecx
	ret
`, nil)
	// 10^10 = 0x2540BE400: eax=0x540BE400, edx=2.
	if rax(res) != 0x540BE400 || res.State.ReadReg(x86.EDX) != 2 {
		t.Errorf("mull: eax=%#x edx=%#x", rax(res), res.State.ReadReg(x86.EDX))
	}
}

func TestLoop(t *testing.T) {
	res := run(t, `
	xorl %eax, %eax
	movl $10, %ecx
.Ltop:
	addl %ecx, %eax
	decl %ecx
	jne .Ltop
	ret
`, nil)
	if rax(res) != 55 {
		t.Errorf("sum 1..10 = %d", rax(res))
	}
	// Trace must show 10 iterations: decl+addl+jne = 30 + 2 prologue + ret.
	if res.Executed != 33 {
		t.Errorf("executed %d instructions, want 33", res.Executed)
	}
}

func TestConditions(t *testing.T) {
	// Signed and unsigned comparisons.
	res := run(t, `
	movq $-1, %rdi
	cmpq $1, %rdi
	setl %al
	movzbl %al, %eax
	ret
`, nil)
	if rax(res) != 1 {
		t.Error("-1 < 1 signed must hold")
	}
	res = run(t, `
	movq $-1, %rdi
	cmpq $1, %rdi
	setb %al
	movzbl %al, %eax
	ret
`, nil)
	if rax(res) != 0 {
		t.Error("unsigned -1 < 1 must not hold")
	}
	res = run(t, `
	movl $5, %ecx
	cmpl $5, %ecx
	cmovel %ecx, %eax
	ret
`, map[x86.Reg]uint64{x86.RAX: 99})
	if rax(res) != 5 {
		t.Errorf("cmove: %d", rax(res))
	}
}

func TestMemoryAndStack(t *testing.T) {
	res := run(t, `
	push %rbp
	mov %rsp, %rbp
	movl $0x5, -0x4(%rbp)
	addl $0x1, -0x4(%rbp)
	movl -0x4(%rbp), %eax
	pop %rbp
	ret
`, nil)
	if rax(res) != 6 {
		t.Errorf("stack slot = %d", rax(res))
	}
}

func TestCallRet(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	movl $1, %eax
	call g
	addl $1, %eax
	ret
	.size f,.-f
	.type g,@function
g:
	addl $40, %eax
	ret
	.size g,.-g
`
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Config{Unit: u, Layout: layout, Entry: "f", CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rax(res) != 42 {
		t.Errorf("call/ret chain = %d", rax(res))
	}
}

func TestJumpTableDispatch(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	movl %edi, %edi
	movq .Ltab(,%rdi,8), %rax
	jmp *%rax
.Lcase0:
	movl $100, %eax
	ret
.Lcase1:
	movl $200, %eax
	ret
	.size f,.-f
	.section .rodata
.Ltab:
	.quad .Lcase0
	.quad .Lcase1
`
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for val, want := range map[uint64]uint64{0: 100, 1: 200} {
		res, err := Run(&Config{
			Unit: u, Layout: layout, Entry: "f",
			InitRegs: map[x86.Reg]uint64{x86.RDI: val},
		})
		if err != nil {
			t.Fatalf("case %d: %v", val, err)
		}
		if rax(res) != want {
			t.Errorf("case %d => %d, want %d", val, rax(res), want)
		}
	}
}

func TestDataSection(t *testing.T) {
	src := `
	.text
	.type f,@function
f:
	movl counter(%rip), %eax
	addl $1, %eax
	movl %eax, counter(%rip)
	movl counter(%rip), %eax
	ret
	.size f,.-f
	.data
counter:
	.long 41
`
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Config{Unit: u, Layout: layout, Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if rax(res) != 42 {
		t.Errorf("counter = %d", rax(res))
	}
}

func TestSSEScalar(t *testing.T) {
	res := run(t, `
	movl $3, %edi
	cvtsi2sdl %edi, %xmm0
	movl $4, %esi
	cvtsi2sdl %esi, %xmm1
	mulsd %xmm0, %xmm0
	mulsd %xmm1, %xmm1
	addsd %xmm1, %xmm0
	sqrtsd %xmm0, %xmm0
	cvttsd2si %xmm0, %eax
	ret
`, nil)
	if rax(res) != 5 {
		t.Errorf("hypot(3,4) = %d", rax(res))
	}
	res = run(t, `
	pxor %xmm3, %xmm3
	cvttsd2si %xmm3, %eax
	ret
`, nil)
	if rax(res) != 0 {
		t.Errorf("pxor zero = %d", rax(res))
	}
}

func TestSSECompareBranch(t *testing.T) {
	res := run(t, `
	movl $2, %edi
	cvtsi2sdl %edi, %xmm0
	movl $3, %esi
	cvtsi2sdl %esi, %xmm1
	ucomisd %xmm0, %xmm1
	ja .Lgt
	movl $0, %eax
	ret
.Lgt:
	movl $1, %eax
	ret
`, nil)
	if rax(res) != 1 {
		t.Error("3 > 2 via ucomisd failed")
	}
}

func TestEventsAndTrace(t *testing.T) {
	res := run(t, `
	movq (%rdi), %rax
	movq %rax, 8(%rdi)
	jne .Lx
.Lx:
	ret
`, map[x86.Reg]uint64{x86.RDI: 0x700000})
	ev := res.Trace
	if !ev[0].HasLoad || ev[0].LoadAddr != 0x700000 {
		t.Errorf("load event wrong: %+v", ev[0])
	}
	if !ev[1].HasStore || ev[1].StoreAddr != 0x700008 {
		t.Errorf("store event wrong: %+v", ev[1])
	}
	if !ev[2].IsCondBranch {
		t.Error("jcc event must be marked conditional")
	}
	if !ev[3].IsBranch || !ev[3].Taken {
		t.Error("ret must trace as a taken branch")
	}
	for _, e := range ev {
		if e.Len == 0 {
			t.Errorf("event with zero length: %+v", e)
		}
	}
}

func TestPrefetchEvent(t *testing.T) {
	res := run(t, `
	prefetchnta (%rdi)
	movq (%rdi), %rax
	ret
`, map[x86.Reg]uint64{x86.RDI: 0x700100})
	if !res.Trace[0].NonTemporal || res.Trace[0].LoadAddr != 0x700100 {
		t.Errorf("prefetchnta event wrong: %+v", res.Trace[0])
	}
}

func TestSamples(t *testing.T) {
	src := `
	xorl %eax, %eax
	movl $100, %ecx
.Ltop:
	addl %ecx, %eax
	decl %ecx
	jne .Ltop
	ret
`
	u, err := asm.ParseString("t.s", "\t.text\n\t.type f,@function\nf:\n"+src+"\t.size f,.-f\n")
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Config{Unit: u, Layout: layout, Entry: "f", SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 25 {
		t.Errorf("samples = %d, want ~30", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Node == nil {
			t.Fatal("sample without node")
		}
	}
}

func TestInstructionBudget(t *testing.T) {
	src := "\t.text\n\t.type f,@function\nf:\n.Lspin:\n\tjmp .Lspin\n\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(&Config{Unit: u, Layout: layout, Entry: "f", MaxInsts: 1000}); err == nil {
		t.Error("infinite loop must exhaust the budget")
	}
}

func TestUnknownCallFails(t *testing.T) {
	if _, err := tryRun("\tcall printf\n\tret\n", nil); err == nil {
		t.Error("external call must fail without ExternalCalls")
	}
}

func TestExternalCallsClobber(t *testing.T) {
	src := "\t.text\n\t.type f,@function\nf:\n\tmovl $7, %ebx\n\tcall puts\n\tmovq %rbx, %rax\n\tret\n\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Config{Unit: u, Layout: layout, Entry: "f", ExternalCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	// rbx is callee-saved: survives.
	if rax(res) != 7 {
		t.Errorf("callee-saved rbx = %d", rax(res))
	}
}

func TestFlagParity(t *testing.T) {
	// 3 has two bits set => even parity => PF set.
	res := run(t, `
	movl $3, %eax
	testl %eax, %eax
	setp %al
	movzbl %al, %eax
	ret
`, nil)
	if rax(res) != 1 {
		t.Error("PF after test of 3 must be set")
	}
}

func TestOverflowFlag(t *testing.T) {
	res := run(t, `
	movl $0x7fffffff, %eax
	addl $1, %eax
	seto %al
	movzbl %al, %eax
	ret
`, nil)
	if rax(res) != 1 {
		t.Error("OF after int32 max + 1 must be set")
	}
	res = run(t, `
	movl $0x7fffffff, %eax
	addl $1, %eax
	setc %al
	movzbl %al, %eax
	ret
`, nil)
	if rax(res) != 0 {
		t.Error("CF after int32 max + 1 must be clear")
	}
}

func TestTraceNodeIdentity(t *testing.T) {
	res := run(t, "\tnop\n\tnop\n\tret\n", nil)
	var nodes []*ir.Node
	for _, e := range res.Trace {
		nodes = append(nodes, e.Node)
	}
	if len(nodes) != 3 || nodes[0] == nodes[1] {
		t.Error("trace must reference distinct IR nodes")
	}
}

func TestChecksumAndClone(t *testing.T) {
	run1 := run(t, "\tmovl $7, %eax\n\tmovq %rax, -8(%rsp)\n\tret\n", nil)
	run2 := run(t, "\tmovl $7, %eax\n\tmovq %rax, -8(%rsp)\n\tret\n", nil)
	if run1.State.Checksum() != run2.State.Checksum() {
		t.Error("identical programs must produce identical checksums")
	}
	run3 := run(t, "\tmovl $8, %eax\n\tmovq %rax, -8(%rsp)\n\tret\n", nil)
	if run1.State.Checksum() == run3.State.Checksum() {
		t.Error("different results must produce different checksums")
	}

	// Clone must be deep: mutating the clone's memory and registers
	// must not affect the original.
	orig := run1.State
	cp := orig.Clone()
	cp.WriteReg(x86.RAX, 99)
	cp.WriteMem(0x12345, 0xFF, 1)
	if orig.ReadReg(x86.RAX) == 99 {
		t.Error("Clone shares registers")
	}
	if orig.ReadMem(0x12345, 1) == 0xFF {
		t.Error("Clone shares memory pages")
	}
	if cp.Checksum() == orig.Checksum() {
		t.Error("mutated clone should differ")
	}
}
