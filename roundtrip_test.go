package mao_test

import (
	"os"
	"path/filepath"
	"testing"

	"mao"
	"mao/internal/corpus"
)

// roundtripSources collects every checked-in assembly fixture: the
// corpus golden files and cmd/mao's test inputs.
func roundtripSources(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, dir := range []string{"internal/corpus/testdata", "cmd/mao/testdata"} {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && filepath.Ext(path) == ".s" {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(files) == 0 {
		t.Fatal("no assembly fixtures found")
	}
	return files
}

// TestRoundtripIdempotence: parse → emit → reparse → emit must be a
// fixpoint — the second emission is byte-identical to the first. This
// pins the parser and printer as exact inverses over everything either
// of them produces, the property the whole assembly-to-assembly design
// rests on.
func TestRoundtripIdempotence(t *testing.T) {
	for _, path := range roundtripSources(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			u1, err := mao.ParseFile(path)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			emit1 := u1.String()
			u2, err := mao.ParseString(path+"#2", emit1)
			if err != nil {
				t.Fatalf("reparse of own output: %v", err)
			}
			if emit2 := u2.String(); emit2 != emit1 {
				t.Errorf("second emission differs from first")
			}
		})
	}
}

// TestRoundtripGeneratedCorpus extends the fixpoint check to freshly
// generated corpus units, which exercise constructs the small golden
// files may not.
func TestRoundtripGeneratedCorpus(t *testing.T) {
	for _, wl := range corpus.Spec2000Int(0.05)[:3] {
		t.Run(wl.Name, func(t *testing.T) {
			u1, err := mao.ParseString(wl.Name+".s", corpus.Generate(wl))
			if err != nil {
				t.Fatal(err)
			}
			emit1 := u1.String()
			u2, err := mao.ParseString(wl.Name+"#2", emit1)
			if err != nil {
				t.Fatalf("reparse of own output: %v", err)
			}
			if emit2 := u2.String(); emit2 != emit1 {
				t.Errorf("second emission differs from first")
			}
		})
	}
}

// fullPipeline is a representative pipeline mixing parallel-safe
// function passes with serial alignment passes.
const fullPipeline = "REDZEXT:REDTEST:REDMOV:ADDADD:DCE:CONSTFOLD:NOPKILL:SCHED:LOOP16"

// TestPipelineWorkerDeterminism: the full pipeline over the corpus
// fixtures emits byte-identical assembly and identical merged Stats at
// workers = 1, 2 and 8, with and without the relaxation cache.
func TestPipelineWorkerDeterminism(t *testing.T) {
	for _, wl := range corpus.Spec2000Int(0.05)[:3] {
		t.Run(wl.Name, func(t *testing.T) {
			src := corpus.Generate(wl)

			run := func(workers int, cache *mao.Cache) (string, string) {
				u, err := mao.ParseString(wl.Name+".s", src)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := mao.RunPipelineParallel(u, fullPipeline,
					mao.Options{Workers: workers, Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				return u.String(), stats.String()
			}

			baseOut, baseStats := run(1, nil)
			for _, workers := range []int{2, 8} {
				out, stats := run(workers, nil)
				if out != baseOut {
					t.Errorf("workers=%d: emitted assembly differs from sequential", workers)
				}
				if stats != baseStats {
					t.Errorf("workers=%d: stats differ:\n%s\nvs\n%s", workers, stats, baseStats)
				}
			}
			// Cached runs add only the RELAXCACHE counters.
			cache := mao.NewCache()
			for _, workers := range []int{1, 8} {
				out, _ := run(workers, cache)
				if out != baseOut {
					t.Errorf("workers=%d cached: emitted assembly differs", workers)
				}
			}
		})
	}
}
