package mao_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mao"
)

// corpusSources reads every corpus fixture into memory.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	fixtures, err := filepath.Glob(filepath.Join("internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	sources := map[string]string{}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		sources[fx] = string(b)
	}
	return sources
}

// TestTracerByteTransparency is the differential test of the tracing
// subsystem: over the whole corpus and a pipeline mix that deletes,
// rewrites, synthesizes and reorders instructions, a run with a span
// collector attached must produce byte-for-byte the assembly and
// exactly the statistics of a run without one — at one worker and at
// eight.
func TestTracerByteTransparency(t *testing.T) {
	sources := corpusSources(t)
	specs := []string{
		"REDTEST:REDMOV:REDZEXT",
		"DCE:CONSTFOLD:SCHED",
		"NOPKILL:LOOP16",
		"INSTRUMENT:ADDADD",
	}
	for fx, src := range sources {
		for _, spec := range specs {
			// Reference: tracer off, sequential.
			ref, err := mao.ParseString(fx, src)
			if err != nil {
				t.Fatal(err)
			}
			refStats, err := mao.RunPipelineParallel(ref, spec, mao.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s %s: %v", fx, spec, err)
			}
			wantAsm, wantStats := ref.String(), refStats.String()

			for _, workers := range []int{1, 8} {
				name := fmt.Sprintf("%s/%s/j%d", filepath.Base(fx), spec, workers)
				u, err := mao.ParseString(fx, src)
				if err != nil {
					t.Fatal(err)
				}
				col := mao.NewTraceCollector()
				st, err := mao.RunPipelineParallel(u, spec, mao.Options{Workers: workers, Tracer: col})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := u.String(); got != wantAsm {
					t.Errorf("%s: traced output differs from untraced reference", name)
				}
				if got := st.String(); got != wantStats {
					t.Errorf("%s: traced stats differ from untraced reference:\n got %q\nwant %q",
						name, got, wantStats)
				}
				if len(col.Spans()) == 0 {
					t.Errorf("%s: collector attached but no spans recorded", name)
				}
			}
		}
	}
}

// TestExplainAttribution pins the provenance contract of --explain:
// after a pipeline that synthesizes instructions, every node that did
// not come from the input (SourceLine 0) must name a real pass
// invocation of the pipeline as its origin — no anonymous machine
// code in the output.
func TestExplainAttribution(t *testing.T) {
	sources := corpusSources(t)
	const spec = "INSTRUMENT:LOOP16:REDTEST"
	passNames := map[string]bool{}
	invocations := 0
	for _, p := range strings.Split(spec, ":") {
		passNames[p] = true
		invocations++
	}
	refRE := regexp.MustCompile(`^([A-Z0-9]+)\[(\d+)\]$`)

	for fx, src := range sources {
		u, err := mao.ParseString(fx, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mao.RunPipelineParallel(u, spec, mao.Options{Workers: 4}); err != nil {
			t.Fatalf("%s: %v", fx, err)
		}
		lineage := mao.Explain(u)
		if len(lineage) == 0 {
			t.Fatalf("%s: empty lineage", fx)
		}
		synthesized := 0
		for _, l := range lineage {
			if l.SourceLine != 0 {
				// A source node: it may carry a LastMutator (in-place
				// rewrite) but never a synthetic origin.
				if l.Origin != "" {
					t.Errorf("%s: source node %d (%s) carries origin %q",
						fx, l.Index, l.Text, l.Origin)
				}
				continue
			}
			synthesized++
			m := refRE.FindStringSubmatch(l.Origin)
			if m == nil {
				t.Errorf("%s: synthesized node %d (%s) has unattributable origin %q",
					fx, l.Index, l.Text, l.Origin)
				continue
			}
			if !passNames[m[1]] {
				t.Errorf("%s: node %d origin %q names a pass outside the pipeline %q",
					fx, l.Index, l.Origin, spec)
			}
			var idx int
			fmt.Sscanf(m[2], "%d", &idx)
			if idx < 0 || idx >= invocations {
				t.Errorf("%s: node %d origin %q has invocation index outside [0,%d)",
					fx, l.Index, l.Origin, invocations)
			}
		}
		if synthesized == 0 {
			t.Errorf("%s: pipeline %q synthesized no nodes — attribution untested", fx, spec)
		}
	}
}
