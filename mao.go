// Package mao is an extensible micro-architectural assembly-to-assembly
// optimizer for x86-64, reproducing the system described in
//
//	R. Hundt, E. Raman, M. Thuresson, N. Vachharajani:
//	"MAO — an Extensible Micro-Architectural Optimizer", CGO 2011.
//
// MAO parses compiler-emitted assembly into a thin IR, runs named
// optimization and analysis passes over it, and emits assembly again:
//
//	u, _ := mao.ParseString("in.s", src)
//	stats, _ := mao.RunPipeline(u, "REDTEST:REDMOV:LOOP16")
//	fmt.Print(u)
//
// Beyond the pass infrastructure the module carries everything the
// paper's evaluation needs: byte-accurate instruction encoding and
// repeated relaxation, per-function CFGs with jump-table resolution,
// Havlak loop nesting, register/flag data-flow, a functional x86-64
// executor, parameterized Core-2/Opteron/P4-like timing models with
// PMU-style counters, the Section IV microbenchmark framework for
// parameter discovery, and synthetic SPEC-like corpora. This package
// is the facade; the subsystems live under internal/ and the runnable
// reproductions under cmd/ and examples/.
package mao

import (
	"context"
	"os"

	"mao/internal/asm"
	"mao/internal/check"
	"mao/internal/ir"
	"mao/internal/memo"
	"mao/internal/pass"
	_ "mao/internal/passes" // register the pass catalog
	"mao/internal/relax"
	"mao/internal/trace"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/sim"
	"mao/internal/verify"
	"mao/internal/x86/decode"
)

// Core IR types.
type (
	// Unit is the IR for one assembly file.
	Unit = ir.Unit
	// Function is one recognized function within a unit.
	Function = ir.Function
	// Node is one IR list element (instruction, label or directive).
	Node = ir.Node
)

// Layout is the result of relaxation: byte-accurate addresses,
// lengths and encodings for every node.
type Layout = relax.Layout

// Stats accumulates per-pass transformation counters.
type Stats = pass.Stats

// Diag is one structured diagnostic from the static checker.
type Diag = check.Diag

// CPUModel is a parameterized micro-architecture description.
type CPUModel = uarch.CPUModel

// Counters are simulated PMU counts (cycles, decode lines, LSD uops,
// mispredicts, RS_FULL stalls, cache events).
type Counters = sim.Counters

// ParseString parses AT&T-syntax assembly into an analyzed unit.
func ParseString(name, src string) (*Unit, error) {
	return asm.ParseString(name, src)
}

// DecodeBinary decodes raw x86-64 machine code and lifts it into an
// analyzed unit: the buffer becomes one .text function, branch-target
// byte offsets become synthetic local labels, and every instruction
// node carries MAODEC[offset] provenance. base is the load address of
// code[0] (it shapes the synthetic label names). The returned unit
// flows through the same passes, checks and relaxation as parsed
// assembly; tracer (optional, may be nil) receives one KindDecode
// span.
func DecodeBinary(name string, code []byte, base int64, tracer *TraceCollector) (*Unit, error) {
	return decode.ToUnit(code, decode.UnitOptions{
		FileName: name, Base: base, Tracer: tracer,
	})
}

// ParseFile parses the assembly file at path.
func ParseFile(path string) (*Unit, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.ParseString(path, string(b))
}

// RunPipeline runs a ':'-separated pass pipeline over the unit, e.g.
// "REDTEST:REDMOV:LOOP16" or "LFIND=trace[2]". It returns the
// accumulated transformation statistics. See Passes for the catalog.
func RunPipeline(u *Unit, spec string) (*Stats, error) {
	mgr, err := pass.NewManager(spec)
	if err != nil {
		return nil, err
	}
	stats, err := mgr.Run(u)
	if err != nil {
		return nil, err
	}
	return stats, u.Analyze()
}

// Cache memoizes position-independent instruction encodings across
// relaxation runs. Share one cache across repeated pipelines over the
// same unit to skip re-encoding unchanged instructions; the pass
// manager keeps it coherent (see relax.Cache).
type Cache = relax.Cache

// NewCache returns an empty relaxation/encoding cache.
func NewCache() *Cache { return relax.NewCache() }

// Memo is the content-addressed, function-granular pipeline memo:
// every function's optimized form is keyed by a sha256 fingerprint of
// its content, the pipeline spec and the pass-catalog/check/verify
// versions. A unit whose functions all hit skips the pipeline and
// splices the memoized spans — byte-identical to a cold run. Share
// one memo across runs (and goroutines) via Options.Memo; the maod
// service shares one across all requests.
type Memo = memo.Memo

// NewMemo returns an empty pipeline memo bounded to maxEntries
// function entries (<= 0 selects the default), versioned against the
// current pass catalog and validator semantics.
func NewMemo(maxEntries int) *Memo {
	return memo.New(maxEntries, pass.CatalogVersion(), check.Version, verify.Version)
}

// Relaxer is reusable fragment-based relaxation state: repeated
// relaxation of the same (possibly edited) unit rescans only the
// fragments that changed instead of re-walking the whole unit. A
// Relaxer is single-goroutine; see relax.State for the reuse and
// invalidation protocol.
type Relaxer = relax.State

// NewRelaxer returns an empty reusable relaxation state. Pass it via
// Options.Relaxer to carry fragment partitions across pipeline runs,
// or use it directly with RelaxWith.
func NewRelaxer() *Relaxer { return relax.NewState() }

// RelaxWith is Relax carrying state across calls: layouts after the
// first are computed incrementally. The returned Layout is a view into
// st and is invalidated by st's next relaxation.
func RelaxWith(u *Unit, st *Relaxer) (*Layout, error) {
	return relax.Relax(u, &relax.Options{State: st})
}

// Tracing and provenance types (see mao/internal/trace).
type (
	// TraceCollector gathers pipeline, invocation and function spans
	// while a pipeline runs. Attach one via Options.Tracer; export with
	// trace.WriteJSON, trace.WriteChromeTrace or trace.WriteSummary.
	TraceCollector = trace.Collector
	// Span is one timed region of a pipeline run.
	Span = trace.Span
	// InstLineage is the provenance record of one instruction: which
	// pass invocation synthesized it and which mutated it last.
	InstLineage = trace.InstLineage
)

// NewTraceCollector returns an empty span collector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// Explain returns per-instruction lineage for every function of the
// unit, in program order: source instructions carry their input line,
// synthesized and rewritten ones the NAME[idx] pass invocation that
// produced them. Run a pipeline first; on a freshly parsed unit every
// instruction is simply a source line.
func Explain(u *Unit) []InstLineage { return trace.Lineage(u) }

// Options configures a pipeline run.
type Options struct {
	// Workers bounds the per-function worker pool for parallel-safe
	// function passes: 0 means GOMAXPROCS, 1 forces sequential
	// execution. Output and statistics are identical at any value.
	Workers int
	// Cache, when non-nil, memoizes instruction encodings across
	// relaxation runs (within alignment passes and the final Relax).
	Cache *Cache
	// Tracer, when non-nil, collects timing spans for the run. Span
	// collection is byte- and stats-transparent; when nil the pipeline
	// pays only a nil check.
	Tracer *TraceCollector
	// Relaxer, when non-nil, carries fragment-based relaxation state
	// across pipeline runs over the same unit, so each run's internal
	// relaxations rescan only what earlier edits touched. Do not run
	// pipelines sharing one Relaxer concurrently.
	Relaxer *Relaxer
	// Memo, when non-nil, memoizes per-function pipeline results by
	// content: a unit whose functions were all optimized before (by
	// any run sharing the memo) skips the pipeline and splices the
	// memoized spans. Output is byte-identical to a cold run.
	Memo *Memo
}

// RunPipelineParallel is RunPipeline with an explicit worker count and
// optional relaxation cache. Emitted assembly and returned statistics
// are byte-for-byte identical at any worker count.
func RunPipelineParallel(u *Unit, spec string, opts Options) (*Stats, error) {
	return RunPipelineContext(context.Background(), u, spec, opts)
}

// RunPipelineContext is RunPipelineParallel under a context: the
// pipeline aborts between passes (and between functions of a function
// pass) once ctx is done, returning ctx's error wrapped with the
// invocation that was about to run. This is the entry point for
// request-scoped callers — the maod optimization service threads every
// request's deadline through it.
func RunPipelineContext(ctx context.Context, u *Unit, spec string, opts Options) (*Stats, error) {
	mgr, err := pass.NewManager(spec)
	if err != nil {
		return nil, err
	}
	mgr.Workers = opts.Workers
	mgr.Cache = opts.Cache
	mgr.Tracer = opts.Tracer
	mgr.RelaxState = opts.Relaxer
	mgr.Memo = opts.Memo
	stats, err := mgr.RunContext(ctx, u)
	if err != nil {
		return nil, err
	}
	return stats, u.Analyze()
}

// Passes lists the registered pass names.
func Passes() []string { return pass.Names() }

// Check runs the static verification rule catalog (ABI contracts,
// condition-code definedness, stack balance, CFG sanity) over every
// function of the unit and returns the sorted diagnostics. The same
// catalog is available as the CHECK pipeline pass and, wrapped in
// check.Certifier, certifies every pass of a pipeline.
func Check(u *Unit) []Diag { return check.CheckUnit(u) }

// Relax computes instruction addresses and byte-accurate encodings by
// repeated relaxation.
func Relax(u *Unit) (*Layout, error) { return relax.Relax(u, nil) }

// Core2 returns the Intel Core-2-like machine model (16-byte decode
// lines, LSD, PC>>5 branch-predictor indexing, forwarding bandwidth 2).
func Core2() *CPUModel { return uarch.Core2() }

// Opteron returns the AMD-like machine model (32-byte fetch windows,
// no LSD, symmetric ALU ports).
func Opteron() *CPUModel { return uarch.Opteron() }

// P4 returns the NetBurst-like machine model (deep pipeline, narrow
// decode).
func P4() *CPUModel { return uarch.P4() }

// Measure executes the unit from the named entry function on the
// model and returns simulated PMU counters. maxInsts bounds the run
// (0 = the 2M default).
func Measure(u *Unit, entry string, model *CPUModel, maxInsts int64) (*Counters, error) {
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, err
	}
	s := sim.New(model)
	if _, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: entry,
		MaxInsts: maxInsts,
		OnEvent:  func(ev exec.Event) { s.Feed(ev) },
	}); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}
