package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestWrapperEndToEnd exercises the paper's integration flow: gcc (or
// the test, standing in for the driver) invokes maoas with --mao
// options mixed into regular assembler arguments; maoas runs the
// pipeline and hands the optimized file to the real `as`. Requires
// binutils; skips otherwise.
func TestWrapperEndToEnd(t *testing.T) {
	realAs, err := exec.LookPath("as")
	if err != nil {
		t.Skip("binutils not installed")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "maoas")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	src := filepath.Join(dir, "in.s")
	obj := filepath.Join(dir, "out.o")
	prog := `	.text
	.globl f
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movl $1, %eax
.Lz:
	ret
	.size f,.-f
`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "--mao=REDTEST", "--64", "-o", obj, src)
	cmd.Env = append(os.Environ(), "MAO_AS="+realAs)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("maoas: %v\n%s", err, out)
	}

	// The object must exist, and disassembly must show the test gone.
	objdump, err := exec.LookPath("objdump")
	if err != nil {
		t.Skip("objdump not installed")
	}
	out, err := exec.Command(objdump, "-d", obj).Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "test") {
		t.Errorf("redundant test survived the wrapper pipeline:\n%s", out)
	}
	if !strings.Contains(string(out), "sub") {
		t.Errorf("expected code missing:\n%s", out)
	}
}

// TestWrapperPassthrough: without --mao options the wrapper must
// behave exactly like the underlying assembler.
func TestWrapperPassthrough(t *testing.T) {
	realAs, err := exec.LookPath("as")
	if err != nil {
		t.Skip("binutils not installed")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "maoas")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	src := filepath.Join(dir, "in.s")
	obj := filepath.Join(dir, "out.o")
	if err := os.WriteFile(src, []byte("\t.text\n\tnop\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "--64", "-o", obj, src)
	cmd.Env = append(os.Environ(), "MAO_AS="+realAs)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("passthrough failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(obj); err != nil {
		t.Fatal("object file missing after passthrough")
	}
}
