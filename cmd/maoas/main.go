// Maoas is the assembler-wrapper integration described in paper
// Section V-A: the original authors renamed the GCC installation's
// `as` to `as-orig` and installed a replacement script that filters
// MAO-specific options out of the assembler command line, runs MAO
// first, and then invokes the original assembler on MAO's output.
// This program is that replacement, so a stock compiler driver picks
// up MAO transparently:
//
//	mv $(gcc -print-prog-name=as) $(dirname $(gcc -print-prog-name=as))/as-orig
//	go build -o $(gcc -print-prog-name=as) ./cmd/maoas
//	gcc -O2 -Wa,--mao=REDTEST:REDMOV foo.c     # now runs MAO inline
//
// Behaviour:
//   - --mao=... options select the MAO pipeline and are consumed.
//   - With no --mao options, maoas simply execs the original
//     assembler (named by $MAO_AS, default "as-orig" next to this
//     binary or on $PATH) with the unchanged arguments.
//   - Otherwise the input file (the last non-option argument) is run
//     through the pipeline into a temporary file, which replaces the
//     input in the forwarded argument list.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mao"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maoas: ")

	var pipelines []string
	var fwd []string
	inputIdx := -1
	for _, a := range os.Args[1:] {
		if spec, ok := strings.CutPrefix(a, "--mao="); ok {
			pipelines = append(pipelines, spec)
			continue
		}
		fwd = append(fwd, a)
		if !strings.HasPrefix(a, "-") && strings.HasSuffix(a, ".s") {
			inputIdx = len(fwd) - 1
		}
	}

	if len(pipelines) > 0 {
		if inputIdx < 0 {
			log.Fatal("--mao given but no .s input file on the command line")
		}
		in := fwd[inputIdx]
		u, err := mao.ParseFile(in)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mao.RunPipeline(u, strings.Join(pipelines, ":")); err != nil {
			log.Fatal(err)
		}
		tmp, err := os.CreateTemp("", "maoas-*.s")
		if err != nil {
			log.Fatal(err)
		}
		defer os.Remove(tmp.Name())
		if _, err := u.WriteTo(tmp); err != nil {
			log.Fatal(err)
		}
		if err := tmp.Close(); err != nil {
			log.Fatal(err)
		}
		fwd[inputIdx] = tmp.Name()
	}

	asPath := findAssembler()
	cmd := exec.Command(asPath, fwd...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
}

// findAssembler locates the original assembler: $MAO_AS, then
// "as-orig" beside this binary, then "as-orig" or "as" on $PATH.
func findAssembler() string {
	if p := os.Getenv("MAO_AS"); p != "" {
		return p
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "as-orig")
		if _, err := os.Stat(sib); err == nil {
			return sib
		}
	}
	if p, err := exec.LookPath("as-orig"); err == nil {
		return p
	}
	if p, err := exec.LookPath("as"); err == nil {
		return p
	}
	fmt.Fprintln(os.Stderr, "maoas: no underlying assembler found (set MAO_AS)")
	os.Exit(1)
	return ""
}
