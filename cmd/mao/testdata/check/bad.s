	.text
	.type bad,@function
bad:
	addl %ebx, %eax
	xorl %r12d, %r12d
	imull %edx, %edx
	jne .Lmissing
	pushq %rax
	ret
	movl $1, %eax
	.size bad,.-bad
