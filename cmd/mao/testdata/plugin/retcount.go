// Retcount is a minimal example of a dynamically loaded MAO pass (the
// paper's plug-in mechanism): an analysis pass counting return
// instructions per function. Build with
//
//	go build -buildmode=plugin -o retcount.so ./testdata/plugin
//
// and load via mao -plugin retcount.so --mao=RETCOUNT=trace[1] in.s.
package main

import (
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

type retCount struct{}

func (retCount) Name() string        { return "RETCOUNT" }
func (retCount) Description() string { return "plugin example: count return instructions" }

func (retCount) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	n := 0
	for _, node := range f.Instructions() {
		if node.Inst.Op == x86.OpRET {
			n++
		}
	}
	ctx.Trace(1, "%s: %d returns", f.Name, n)
	ctx.Count("returns", n)
	return false, nil
}

// RegisterMAOPasses is the symbol the mao driver looks up.
func RegisterMAOPasses() {
	pass.Register(func() pass.Pass { return retCount{} })
}
