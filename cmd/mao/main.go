// Mao is the command-line driver of the micro-architectural optimizer:
// it reads an assembly file, runs the pass pipeline given by --mao=
// options, and (when the pipeline contains the ASM pass) emits
// assembly again, exactly following the paper's invocation style:
//
//	mao --mao=LFIND=trace[2]:ASM=o[/dev/null] in.s
//	mao --mao=REDTEST:REDMOV:ASM=o[out.s] in.s
//
// Pass order on the command line is pass invocation order; reading and
// parsing the input is implicitly the first pass. Multiple --mao=
// options concatenate. -stats prints per-pass transformation counts,
// -passes lists the catalog.
//
// Like the original, passes may also be loaded dynamically: build a
// plugin exporting RegisterMAOPasses (see testdata/plugin) with
//
//	go build -buildmode=plugin -o mypass.so ./mypassdir
//
// and load it with -plugin mypass.so; its passes then appear in the
// registry by name like any built-in.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"plugin"
	"strings"

	"mao"
	"mao/internal/pass"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mao: ")

	var specs, plugins multiFlag
	flag.Var(&specs, "mao", "pass pipeline, e.g. REDTEST:REDMOV:ASM=o[out.s] (repeatable)")
	flag.Var(&plugins, "plugin", "load additional passes from a Go plugin .so (repeatable)")
	stats := flag.Bool("stats", false, "print per-pass transformation statistics")
	list := flag.Bool("passes", false, "list registered passes")
	flag.Parse()

	// Dynamically loaded passes, as in the original MAO ("passes can
	// be statically linked into MAO, or dynamically loaded as
	// plug-ins"). A plugin exports RegisterMAOPasses, which calls
	// pass.Register for each pass it provides.
	for _, so := range plugins {
		pl, err := plugin.Open(so)
		if err != nil {
			log.Fatalf("plugin %s: %v", so, err)
		}
		sym, err := pl.Lookup("RegisterMAOPasses")
		if err != nil {
			log.Fatalf("plugin %s: %v", so, err)
		}
		reg, ok := sym.(func())
		if !ok {
			log.Fatalf("plugin %s: RegisterMAOPasses must be func()", so)
		}
		reg()
	}

	if *list {
		for _, name := range mao.Passes() {
			p := pass.Lookup(name)
			fmt.Printf("%-12s %s\n", name, p.Description())
		}
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: mao [--mao=PIPELINE]... input.s")
	}

	u, err := mao.ParseFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	pipeline := strings.Join(specs, ":")
	st, err := mao.RunPipeline(u, pipeline)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, st.String())
	}
}

// multiFlag accumulates repeated --mao options.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ":") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
