// Mao is the command-line driver of the micro-architectural optimizer:
// it reads an assembly file, runs the pass pipeline given by --mao=
// options, and (when the pipeline contains the ASM pass) emits
// assembly again, exactly following the paper's invocation style:
//
//	mao --mao=LFIND=trace[2]:ASM=o[/dev/null] in.s
//	mao --mao=REDTEST:REDMOV:ASM=o[out.s] in.s
//
// Pass order on the command line is pass invocation order; reading and
// parsing the input is implicitly the first pass. Multiple --mao=
// options concatenate. -stats prints per-pass transformation counts,
// -passes lists the catalog.
//
// The static checker (see mao/internal/check) is reachable two ways:
//
//	mao --check in.s            lint the unit, compiler-style text on stderr
//	mao --check=json in.s       same, JSON diagnostics on stdout
//	mao -certify --mao=... in.s certify every pass invocation of the pipeline
//
// --check runs after the pipeline (if any), so it lints what the
// passes produced; with no --mao it lints the input. The driver exits
// with status 2 when the checker reports an error-severity diagnostic
// or the certifier attributes a violation.
//
// The tracing and provenance plane (see mao/internal/trace) is
// byte-transparent and off by default:
//
//	mao -timings --mao=... in.s          per-pass timing table on stderr
//	mao -trace-json s.jsonl --mao=... in.s    spans as JSON lines
//	mao -trace-chrome t.trace --mao=... in.s  chrome://tracing / Perfetto
//	mao --explain --mao=... in.s         assembly with "# pass: NAME[idx]"
//	mao --explain=json --mao=... in.s    per-instruction lineage JSON
//
// Like the original, passes may also be loaded dynamically: build a
// plugin exporting RegisterMAOPasses (see testdata/plugin) with
//
//	go build -buildmode=plugin -o mypass.so ./mypassdir
//
// and load it with -plugin mypass.so; its passes then appear in the
// registry by name like any built-in.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"plugin"
	"strings"

	"mao"
	"mao/internal/check"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mao: ")

	var specs, plugins multiFlag
	var checkMode checkFlag
	var explainMode explainFlag
	flag.Var(&specs, "mao", "pass pipeline, e.g. REDTEST:REDMOV:ASM=o[out.s] (repeatable)")
	flag.Var(&plugins, "plugin", "load additional passes from a Go plugin .so (repeatable)")
	flag.Var(&checkMode, "check", "run the static checker over the result; --check=json for JSON output")
	flag.Var(&explainMode, "explain", "emit provenance-annotated assembly on stdout; --explain=json for per-instruction lineage JSON")
	certify := flag.Bool("certify", false, "certify every pass invocation with the static checker")
	stats := flag.Bool("stats", false, "print per-pass transformation statistics")
	timings := flag.Bool("timings", false, "print a per-pass timing table (from pipeline spans) on stderr")
	traceJSON := flag.String("trace-json", "", "write pipeline spans as JSON lines to `file`")
	traceChrome := flag.String("trace-chrome", "", "write pipeline spans in Chrome trace-event format to `file` (chrome://tracing, Perfetto)")
	list := flag.Bool("passes", false, "list registered passes")
	workers := flag.Int("j", 0, "worker pool for parallel-safe function passes (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// Dynamically loaded passes, as in the original MAO ("passes can
	// be statically linked into MAO, or dynamically loaded as
	// plug-ins"). A plugin exports RegisterMAOPasses, which calls
	// pass.Register for each pass it provides. Every plugin is
	// attempted so one bad .so on a long command line doesn't hide the
	// errors of the others; any failure aborts before the pipeline.
	if errs := loadPlugins(plugins); len(errs) > 0 {
		for _, err := range errs {
			log.Print(err)
		}
		os.Exit(1)
	}

	if *list {
		for _, name := range mao.Passes() {
			p := pass.Lookup(name)
			fmt.Printf("%-12s %s\n", name, p.Description())
		}
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: mao [--mao=PIPELINE]... input.s")
	}

	u, err := mao.ParseFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := pass.NewManager(strings.Join(specs, ":"))
	if err != nil {
		log.Fatal(err)
	}
	mgr.Workers = *workers
	mgr.Cache = relax.NewCache()
	var cert *check.Certifier
	if *certify {
		cert = &check.Certifier{}
		mgr.Hook = cert
	}
	// Span collection is byte- and stats-transparent, but the collector
	// is only attached when an observer asked for it — the default run
	// stays at the nil-check fast path.
	if *timings || *traceJSON != "" || *traceChrome != "" {
		mgr.Tracer = trace.NewCollector()
	}
	st, err := mgr.Run(u)
	if err != nil {
		log.Fatal(err)
	}
	if err := u.Analyze(); err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, st.String())
	}
	if *timings {
		if err := trace.WriteSummary(os.Stderr, mgr.Tracer); err != nil {
			log.Fatal(err)
		}
	}
	if err := exportSpans(mgr.Tracer, *traceJSON, trace.WriteJSON); err != nil {
		log.Fatal(err)
	}
	if err := exportSpans(mgr.Tracer, *traceChrome, trace.WriteChromeTrace); err != nil {
		log.Fatal(err)
	}
	if explainMode.set {
		if explainMode.json {
			err = trace.WriteExplainJSON(os.Stdout, u)
		} else {
			err = trace.WriteExplainText(os.Stdout, u)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	exit := 0
	if cert != nil {
		for _, v := range cert.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(cert.Violations) > 0 {
			exit = 2
		}
	}
	if checkMode.set {
		diags := mao.Check(u)
		if checkMode.json {
			err = check.WriteJSON(os.Stdout, diags)
		} else {
			err = check.WriteText(os.Stderr, diags)
		}
		if err != nil {
			log.Fatal(err)
		}
		if check.MaxSeverity(diags) >= check.SevError {
			exit = 2
		}
	}
	os.Exit(exit)
}

// loadPlugins opens and registers every plugin, collecting all errors
// instead of stopping at the first.
func loadPlugins(plugins []string) []error {
	var errs []error
	for _, so := range plugins {
		pl, err := plugin.Open(so)
		if err != nil {
			errs = append(errs, fmt.Errorf("plugin %s: %v", so, err))
			continue
		}
		sym, err := pl.Lookup("RegisterMAOPasses")
		if err != nil {
			errs = append(errs, fmt.Errorf("plugin %s: %v", so, err))
			continue
		}
		reg, ok := sym.(func())
		if !ok {
			errs = append(errs, fmt.Errorf("plugin %s: RegisterMAOPasses must be func()", so))
			continue
		}
		reg()
	}
	return errs
}

// checkFlag implements --check as an optional-value boolean flag:
// bare --check selects text output, --check=json selects JSON.
type checkFlag struct {
	set  bool
	json bool
}

func (c *checkFlag) String() string {
	switch {
	case c.json:
		return "json"
	case c.set:
		return "true"
	}
	return ""
}

func (c *checkFlag) Set(v string) error {
	switch v {
	case "", "true":
		c.set, c.json = true, false
	case "false":
		c.set, c.json = false, false
	case "json":
		c.set, c.json = true, true
	default:
		return fmt.Errorf("invalid --check mode %q (want json)", v)
	}
	return nil
}

// IsBoolFlag lets the flag package accept a bare --check.
func (c *checkFlag) IsBoolFlag() bool { return true }

// explainFlag implements --explain the same way: bare --explain emits
// provenance-annotated assembly, --explain=json machine-readable
// lineage.
type explainFlag struct {
	set  bool
	json bool
}

func (e *explainFlag) String() string {
	switch {
	case e.json:
		return "json"
	case e.set:
		return "true"
	}
	return ""
}

func (e *explainFlag) Set(v string) error {
	switch v {
	case "", "true":
		e.set, e.json = true, false
	case "false":
		e.set, e.json = false, false
	case "json":
		e.set, e.json = true, true
	default:
		return fmt.Errorf("invalid --explain mode %q (want json)", v)
	}
	return nil
}

// IsBoolFlag lets the flag package accept a bare --explain.
func (e *explainFlag) IsBoolFlag() bool { return true }

// exportSpans writes the collected spans to path with the given
// exporter; a no-op when no path was requested.
func exportSpans(c *trace.Collector, path string, write func(io.Writer, *trace.Collector) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// multiFlag accumulates repeated --mao options.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ":") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
