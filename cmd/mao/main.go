// Mao is the command-line driver of the micro-architectural optimizer:
// it reads an assembly file, runs the pass pipeline given by --mao=
// options, and (when the pipeline contains the ASM pass) emits
// assembly again, exactly following the paper's invocation style:
//
//	mao --mao=LFIND=trace[2]:ASM=o[/dev/null] in.s
//	mao --mao=REDTEST:REDMOV:ASM=o[out.s] in.s
//
// Pass order on the command line is pass invocation order; reading and
// parsing the input is implicitly the first pass. Multiple --mao=
// options concatenate. -stats prints per-pass transformation counts,
// -passes lists the catalog.
//
// The static checker (see mao/internal/check) is reachable two ways:
//
//	mao --check in.s            lint the unit, compiler-style text on stderr
//	mao --check=json in.s       same, JSON diagnostics on stdout
//	mao -certify --mao=... in.s certify every pass invocation of the pipeline
//
// The translation validator (see mao/internal/verify) proves every
// pass invocation observationally equivalent to its input:
//
//	mao -verify --mao=... in.s       refutations as diagnostics, exit 2
//	mao -verify=json --mao=... in.s  same, JSON diagnostics on stdout
//
// --check runs after the pipeline (if any), so it lints what the
// passes produced; with no --mao it lints the input. When --check,
// -verify and/or -certify are combined, their diagnostics merge into
// one deduplicated, sorted stream. The driver exits with status 2 when
// the checker reports an error-severity diagnostic, the certifier
// attributes a violation, or the verifier refutes an invocation.
//
// The tracing and provenance plane (see mao/internal/trace) is
// byte-transparent and off by default:
//
//	mao -timings --mao=... in.s          per-pass timing table on stderr
//	mao -trace-json s.jsonl --mao=... in.s    spans as JSON lines
//	mao -trace-chrome t.trace --mao=... in.s  chrome://tracing / Perfetto
//	mao --explain --mao=... in.s         assembly with "# pass: NAME[idx]"
//	mao --explain=json --mao=... in.s    per-instruction lineage JSON
//
// Like the original, passes may also be loaded dynamically: build a
// plugin exporting RegisterMAOPasses (see testdata/plugin) with
//
//	go build -buildmode=plugin -o mypass.so ./mypassdir
//
// and load it with -plugin mypass.so; its passes then appear in the
// registry by name like any built-in.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"plugin"
	"strings"

	"mao"
	"mao/internal/check"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/trace"
	"mao/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mao: ")

	var specs, plugins multiFlag
	checkMode := modeFlag{name: "check"}
	explainMode := modeFlag{name: "explain"}
	verifyMode := modeFlag{name: "verify"}
	flag.Var(&specs, "mao", "pass pipeline, e.g. REDTEST:REDMOV:ASM=o[out.s] (repeatable)")
	flag.Var(&plugins, "plugin", "load additional passes from a Go plugin .so (repeatable)")
	flag.Var(&checkMode, "check", "run the static checker over the result; --check=json for JSON output")
	flag.Var(&explainMode, "explain", "emit provenance-annotated assembly on stdout; --explain=json for per-instruction lineage JSON")
	flag.Var(&verifyMode, "verify", "translation-validate every pass invocation; -verify=json for JSON diagnostics")
	certify := flag.Bool("certify", false, "certify every pass invocation with the static checker")
	stats := flag.Bool("stats", false, "print per-pass transformation statistics")
	timings := flag.Bool("timings", false, "print a per-pass timing table (from pipeline spans) on stderr")
	traceJSON := flag.String("trace-json", "", "write pipeline spans as JSON lines to `file`")
	traceChrome := flag.String("trace-chrome", "", "write pipeline spans in Chrome trace-event format to `file` (chrome://tracing, Perfetto)")
	list := flag.Bool("passes", false, "list registered passes")
	workers := flag.Int("j", 0, "worker pool for parallel-safe function passes (0 = GOMAXPROCS, 1 = sequential)")
	binMode := binaryFlag{}
	flag.Var(&binMode, "binary", "treat the input as raw x86-64 machine code instead of assembly; -binary=hex for hex text input")
	base := flag.Int64("base", 0, "load `address` of the first byte of -binary input (shapes synthetic label names)")
	emitBin := flag.String("emit-binary", "", "after the pipeline, write the relaxed .text image as raw machine code to `file`")
	flag.Parse()

	// Dynamically loaded passes, as in the original MAO ("passes can
	// be statically linked into MAO, or dynamically loaded as
	// plug-ins"). A plugin exports RegisterMAOPasses, which calls
	// pass.Register for each pass it provides. Every plugin is
	// attempted so one bad .so on a long command line doesn't hide the
	// errors of the others; any failure aborts before the pipeline.
	if errs := loadPlugins(plugins); len(errs) > 0 {
		for _, err := range errs {
			log.Print(err)
		}
		os.Exit(1)
	}

	if *list {
		for _, name := range mao.Passes() {
			p := pass.Lookup(name)
			fmt.Printf("%-12s %s\n", name, p.Description())
		}
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: mao [--mao=PIPELINE]... input.s  (or: mao -binary [--mao=...] input.bin)")
	}

	// The span collector is created before the input is read so the
	// binary front end's KindDecode span lands on it. Collection is
	// byte- and stats-transparent, but the collector is only attached
	// when an observer asked for it — the default run stays at the
	// nil-check fast path.
	var tracer *trace.Collector
	if *timings || *traceJSON != "" || *traceChrome != "" {
		tracer = trace.NewCollector()
	}

	u, err := loadInput(flag.Arg(0), binMode, *base, tracer)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := pass.NewManager(strings.Join(specs, ":"))
	if err != nil {
		log.Fatal(err)
	}
	mgr.Workers = *workers
	mgr.Cache = relax.NewCache()
	var cert *check.Certifier
	var vcert *verify.Certifier
	var hooks pass.Hooks
	if *certify {
		cert = &check.Certifier{}
		hooks = append(hooks, cert)
	}
	if verifyMode.set {
		vcert = &verify.Certifier{}
		hooks = append(hooks, vcert)
	}
	switch len(hooks) {
	case 0:
	case 1:
		mgr.Hook = hooks[0]
	default:
		mgr.Hook = hooks
	}
	if tracer != nil {
		mgr.Tracer = tracer
		if vcert != nil {
			vcert.Tracer = mgr.Tracer
		}
	}
	st, err := mgr.Run(u)
	if err != nil {
		log.Fatal(err)
	}
	if err := u.Analyze(); err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, st.String())
	}
	if *emitBin != "" {
		layout, err := mao.Relax(u)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*emitBin, layout.Image(u, ".text"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *timings {
		if err := trace.WriteSummary(os.Stderr, mgr.Tracer); err != nil {
			log.Fatal(err)
		}
	}
	if err := exportSpans(mgr.Tracer, *traceJSON, trace.WriteJSON); err != nil {
		log.Fatal(err)
	}
	if err := exportSpans(mgr.Tracer, *traceChrome, trace.WriteChromeTrace); err != nil {
		log.Fatal(err)
	}
	if explainMode.set {
		if explainMode.json {
			err = trace.WriteExplainJSON(os.Stdout, u)
		} else {
			err = trace.WriteExplainText(os.Stdout, u)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	// Diagnostic reporting. --check, -verify and -certify all speak
	// check.Diag; when more than one producer is active their outputs
	// merge into ONE deduplicated, sorted stream instead of interleaved
	// per-producer reports. Certifier violations that lack node-level
	// provenance are attributed to the offending invocation via Origin,
	// which is excluded from the dedup key.
	exit := 0
	merged := checkMode.set || verifyMode.set
	var diags []check.Diag
	if cert != nil {
		if merged {
			diags = append(diags, violationDiags(cert.Violations)...)
		} else {
			for _, v := range cert.Violations {
				fmt.Fprintln(os.Stderr, v)
			}
		}
		if len(cert.Violations) > 0 {
			exit = 2
		}
	}
	if vcert != nil {
		diags = append(diags, violationDiags(vcert.Violations)...)
		if len(vcert.Violations) > 0 {
			exit = 2
		}
	}
	if checkMode.set {
		diags = append(diags, mao.Check(u)...)
	}
	if merged {
		diags = dedupDiags(diags)
		check.Sort(diags)
		if checkMode.json || verifyMode.json {
			err = check.WriteJSON(os.Stdout, diags)
		} else {
			err = check.WriteText(os.Stderr, diags)
		}
		if err != nil {
			log.Fatal(err)
		}
		if check.MaxSeverity(diags) >= check.SevError {
			exit = 2
		}
	}
	os.Exit(exit)
}

// loadInput reads the input file as assembly or, under -binary, as a
// raw (or hex-text) machine-code blob lifted through the decoder.
// "-" reads standard input, so JIT buffers pipe straight in.
func loadInput(path string, bin binaryFlag, base int64, tracer *trace.Collector) (*mao.Unit, error) {
	if !bin.set {
		if path == "-" {
			b, err := io.ReadAll(os.Stdin)
			if err != nil {
				return nil, err
			}
			return mao.ParseString("<stdin>", string(b))
		}
		return mao.ParseFile(path)
	}
	name := path
	var raw []byte
	var err error
	if path == "-" {
		name = "<stdin>"
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if bin.hex {
		if raw, err = decodeHexText(raw); err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
	}
	return mao.DecodeBinary(name, raw, base, tracer)
}

// decodeHexText turns hex text (whitespace and newlines ignored, an
// optional leading 0x) into bytes.
func decodeHexText(b []byte) ([]byte, error) {
	s := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return -1
		}
		return r
	}, string(b))
	s = strings.TrimPrefix(s, "0x")
	return hex.DecodeString(s)
}

// binaryFlag implements -binary as an optional-value boolean flag:
// bare -binary reads raw bytes, -binary=hex reads hex text.
type binaryFlag struct {
	set bool
	hex bool
}

func (b *binaryFlag) String() string {
	switch {
	case b.hex:
		return "hex"
	case b.set:
		return "true"
	}
	return ""
}

func (b *binaryFlag) Set(v string) error {
	switch v {
	case "", "true":
		b.set, b.hex = true, false
	case "false":
		b.set, b.hex = false, false
	case "hex":
		b.set, b.hex = true, true
	default:
		return fmt.Errorf("invalid -binary mode %q (want hex)", v)
	}
	return nil
}

// IsBoolFlag lets the flag package accept the bare form.
func (b *binaryFlag) IsBoolFlag() bool { return true }

// violationDiags projects certifier violations onto plain diagnostics
// for the merged stream, stamping the offending invocation into Origin
// when the anchored node carried none.
func violationDiags(vs []check.Violation) []check.Diag {
	out := make([]check.Diag, 0, len(vs))
	for _, v := range vs {
		d := v.Diag
		if d.Origin == "" {
			d.Origin = fmt.Sprintf("%s[%d]", v.Pass, v.Index)
		}
		out = append(out, d)
	}
	return out
}

// dedupDiags drops diagnostics whose identity (Diag.Key: rule,
// function, message — position- and provenance-independent) was
// already seen, keeping the first occurrence.
func dedupDiags(diags []check.Diag) []check.Diag {
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		if k := d.Key(); !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	return out
}

// loadPlugins opens and registers every plugin, collecting all errors
// instead of stopping at the first.
func loadPlugins(plugins []string) []error {
	var errs []error
	for _, so := range plugins {
		pl, err := plugin.Open(so)
		if err != nil {
			errs = append(errs, fmt.Errorf("plugin %s: %v", so, err))
			continue
		}
		sym, err := pl.Lookup("RegisterMAOPasses")
		if err != nil {
			errs = append(errs, fmt.Errorf("plugin %s: %v", so, err))
			continue
		}
		reg, ok := sym.(func())
		if !ok {
			errs = append(errs, fmt.Errorf("plugin %s: RegisterMAOPasses must be func()", so))
			continue
		}
		reg()
	}
	return errs
}

// modeFlag implements --check, --explain and -verify as optional-value
// boolean flags: bare --check selects text output, --check=json JSON.
type modeFlag struct {
	name string // flag name, for error messages
	set  bool
	json bool
}

func (m *modeFlag) String() string {
	switch {
	case m.json:
		return "json"
	case m.set:
		return "true"
	}
	return ""
}

func (m *modeFlag) Set(v string) error {
	switch v {
	case "", "true":
		m.set, m.json = true, false
	case "false":
		m.set, m.json = false, false
	case "json":
		m.set, m.json = true, true
	default:
		return fmt.Errorf("invalid --%s mode %q (want json)", m.name, v)
	}
	return nil
}

// IsBoolFlag lets the flag package accept the bare form.
func (m *modeFlag) IsBoolFlag() bool { return true }

// exportSpans writes the collected spans to path with the given
// exporter; a no-op when no path was requested.
func exportSpans(c *trace.Collector, path string, write func(io.Writer, *trace.Collector) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// multiFlag accumulates repeated --mao options.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ":") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
