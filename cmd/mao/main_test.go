package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles the mao binary once per test run.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mao")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

const driverInput = `	.text
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
.Lz:
	ret
	.size f,.-f
`

func TestDriverPipeline(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	out := filepath.Join(dir, "out.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "--mao=REDTEST:REDMOV:ASM=o["+out+"]", "-stats", in)
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mao failed: %v\n%s", err, outBytes)
	}
	if !strings.Contains(string(outBytes), "REDTEST.removed = 1") {
		t.Errorf("stats missing:\n%s", outBytes)
	}
	emitted, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(emitted)
	if strings.Contains(text, "testl") {
		t.Error("redundant test survived")
	}
	if !strings.Contains(text, "movq\t%rdx, %rcx") {
		t.Errorf("REDMOV rewrite missing:\n%s", text)
	}
}

func TestDriverAnalysisOnly(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	// Analysis-only pipeline: no ASM pass, no output file expected.
	out, err := exec.Command(bin, "--mao=LFIND", "-stats", in).CombinedOutput()
	if err != nil {
		t.Fatalf("mao failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "LFIND.") && len(out) != 0 {
		t.Logf("output: %s", out)
	}
}

func TestDriverListPasses(t *testing.T) {
	bin := buildDriver(t)
	out, err := exec.Command(bin, "-passes").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"REDTEST", "LOOP16", "SCHED", "ASM"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pass list missing %s", want)
		}
	}
}

func TestDriverErrors(t *testing.T) {
	bin := buildDriver(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-args invocation must fail")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	os.WriteFile(in, []byte(driverInput), 0o644)
	if err := exec.Command(bin, "--mao=NOSUCHPASS", in).Run(); err == nil {
		t.Error("unknown pass must fail")
	}
	if err := exec.Command(bin, "--mao=ASM", "/nonexistent.s").Run(); err == nil {
		t.Error("missing input must fail")
	}
}

// TestDriverPluginErrorsCollected loads several broken plugins in one
// invocation and expects every failure reported (not just the first)
// and exit status 1.
func TestDriverPluginErrorsCollected(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	missingA := filepath.Join(dir, "missing_a.so")
	missingB := filepath.Join(dir, "missing_b.so")
	notPlugin := filepath.Join(dir, "not_a_plugin.so")
	if err := os.WriteFile(notPlugin, []byte("not an ELF"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-plugin", missingA, "-plugin", notPlugin, "-plugin", missingB,
		"--mao=REDTEST", in)
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	text := string(out)
	for _, so := range []string{missingA, notPlugin, missingB} {
		if !strings.Contains(text, "plugin "+so+":") {
			t.Errorf("error for %s not reported:\n%s", so, text)
		}
	}
}

// exitCode digs the process exit status out of an exec error.
func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("not an exit error: %v", err)
	}
	return ee.ExitCode()
}

// TestDriverCheckJSONGolden pins the full --check=json output on a
// fixture violating every shipped rule: valid JSON, deterministic
// (sorted) order, file:line positions, exit status 2.
func TestDriverCheckJSONGolden(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "--check=json", "testdata/check/bad.s")
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if code := exitCode(t, cmd.Run()); code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, stderr.String())
	}

	golden, err := os.ReadFile("testdata/check/bad.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("--check=json output differs from golden:\n--- got ---\n%s--- want ---\n%s",
			stdout.String(), golden)
	}

	var diags []struct {
		Rule string `json:"rule"`
		File string `json:"file"`
		Line int    `json:"line"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for i, d := range diags {
		seen[d.Rule] = true
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic %d lacks a file:line position: %+v", i, d)
		}
		if i > 0 && diags[i-1].Line > d.Line {
			t.Errorf("diagnostics not sorted by line at %d", i)
		}
	}
	for _, rule := range []string{
		"callee-save", "flags-undef", "reg-uninit",
		"stack-depth", "undef-label", "unreach",
	} {
		if !seen[rule] {
			t.Errorf("fixture did not trigger rule %s", rule)
		}
	}
}

func TestDriverCheckText(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "--check", "testdata/check/bad.s")
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "bad.s:9: error: return with unbalanced stack (+8 bytes) [stack-depth] (in bad)") {
		t.Errorf("compiler-style rendering missing:\n%s", text)
	}
}

func TestDriverCheckClean(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	// driverInput has warnings (r15 use) but no error-severity
	// diagnostics, so --check exits 0.
	cmd := exec.Command(bin, "--check", in)
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Errorf("exit = %d, want 0\n%s", code, out)
	}
}

func TestDriverCertify(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	// A correct pipeline certifies clean: no violations, exit 0.
	cmd := exec.Command(bin, "-certify", "--mao=REDTEST:REDMOV", in)
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Errorf("certified pipeline exit = %d, want 0\n%s", code, out)
	}
	if strings.Contains(string(out), "introduced:") {
		t.Errorf("spurious violations:\n%s", out)
	}
}

// TestDriverPlugin exercises the dynamic pass-loading path: build the
// example plugin, load it, and run its pass. Skips when the toolchain
// cannot produce plugins (needs cgo).
func TestDriverPlugin(t *testing.T) {
	dir := t.TempDir()
	so := filepath.Join(dir, "retcount.so")
	build := exec.Command("go", "build", "-buildmode=plugin", "-o", so, "./testdata/plugin")
	build.Env = append(os.Environ(), "CGO_ENABLED=1")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("plugin buildmode unavailable: %v\n%s", err, out)
	}
	bin := buildDriver(t)
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-plugin", so, "--mao=RETCOUNT", "-stats", in).CombinedOutput()
	if err != nil {
		t.Skipf("plugin load failed (toolchain/flag mismatch): %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "RETCOUNT.returns = 1") {
		t.Errorf("plugin pass stats missing:\n%s", out)
	}
}

// TestDriverVerifyClean: a correct pipeline translation-validates
// clean — no refutation diagnostics, exit 0.
func TestDriverVerifyClean(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-verify", "--mao=REDTEST:REDMOV", in)
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Errorf("verified pipeline exit = %d, want 0\n%s", code, out)
	}
	if strings.Contains(string(out), "verify-equiv") {
		t.Errorf("spurious refutations:\n%s", out)
	}
}

// TestDriverVerifyJSON: -verify=json emits a (here empty) JSON
// diagnostic array on stdout.
func TestDriverVerifyJSON(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-verify=json", "--mao=REDTEST:REDMOV", in)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if code := exitCode(t, cmd.Run()); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, stderr.String())
	}
	var diags []json.RawMessage
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean pipeline produced %d diagnostics:\n%s", len(diags), stdout.String())
	}
}

// TestDriverMergedStream: --check and -verify combined produce ONE
// merged, sorted diagnostic stream — byte-identical to --check alone
// when verification is clean, never a second interleaved report.
func TestDriverMergedStream(t *testing.T) {
	bin := buildDriver(t)
	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, append(args, "testdata/check/bad.s")...)
		out, err := cmd.CombinedOutput()
		return string(out), exitCode(t, err)
	}
	checkOnly, code1 := run("--check")
	if code1 != 2 {
		t.Fatalf("--check exit = %d, want 2\n%s", code1, checkOnly)
	}
	both, code2 := run("--check", "-verify")
	if code2 != 2 {
		t.Fatalf("--check -verify exit = %d, want 2\n%s", code2, both)
	}
	if both != checkOnly {
		t.Errorf("merged stream differs from --check alone:\n--- merged ---\n%s--- check ---\n%s",
			both, checkOnly)
	}
}

// TestDriverBinaryRoundtrip: -emit-binary assembles a fixture to raw
// machine code; -binary lifts that blob back, runs a pipeline over it,
// and both the assembly and re-emitted image reflect the
// optimization.
func TestDriverBinaryRoundtrip(t *testing.T) {
	bin := buildDriver(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.s")
	blob := filepath.Join(dir, "in.bin")
	outS := filepath.Join(dir, "out.s")
	outBin := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(in, []byte(driverInput), 0o644); err != nil {
		t.Fatal(err)
	}

	if out, err := exec.Command(bin, "-emit-binary", blob, in).CombinedOutput(); err != nil {
		t.Fatalf("emit-binary failed: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty machine-code image")
	}

	// Decode with no pipeline: the re-emitted image is byte-identical.
	if out, err := exec.Command(bin, "-binary", "-emit-binary", outBin, blob).CombinedOutput(); err != nil {
		t.Fatalf("binary roundtrip failed: %v\n%s", err, out)
	}
	round, err := os.ReadFile(outBin)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(raw) {
		t.Errorf("decode→re-encode not byte-identical: %x vs %x", round, raw)
	}

	// Decode with a pipeline: REDTEST fires on the lifted unit and the
	// optimized image shrinks.
	out, err := exec.Command(bin, "-binary", "-stats", "-emit-binary", outBin,
		"--mao=REDTEST:ASM=o["+outS+"]", blob).CombinedOutput()
	if err != nil {
		t.Fatalf("binary pipeline failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "REDTEST.removed = 1") {
		t.Errorf("stats missing:\n%s", out)
	}
	text, err := os.ReadFile(outS)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(text), "testl") {
		t.Errorf("redundant test survived the decoded pipeline:\n%s", text)
	}
	if !strings.Contains(string(text), ".Lmaodec_") {
		t.Errorf("no synthetic labels in decoded assembly:\n%s", text)
	}
	opt, err := os.ReadFile(outBin)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) >= len(raw) {
		t.Errorf("optimized image did not shrink: %d -> %d bytes", len(raw), len(opt))
	}
}

// TestDriverBinaryHexStdin: -binary=hex reads hex text (here from
// stdin via "-"), and -base shapes the synthetic label names.
func TestDriverBinaryHexStdin(t *testing.T) {
	bin := buildDriver(t)
	outS := filepath.Join(t.TempDir(), "out.s")
	// 0: xorl %eax,%eax; 2: decl %eax; 4: jne 2; 6: ret
	cmd := exec.Command(bin, "-binary=hex", "-base", "0x401000", "--mao=ASM=o["+outS+"]", "-")
	cmd.Stdin = strings.NewReader("31c0 ffc8 75fc c3\n")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("mao failed: %v\n%s", err, out)
	}
	text, err := os.ReadFile(outS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "jne\t.Lmaodec_401002") {
		t.Errorf("branch not lifted to a base-relative label:\n%s", text)
	}
}

// TestDriverBinaryDecodeError: malformed machine code fails with the
// decoder's structured offset-carrying message, not a panic.
func TestDriverBinaryDecodeError(t *testing.T) {
	bin := buildDriver(t)
	blob := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(blob, []byte{0x90, 0x48}, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-binary", blob).CombinedOutput()
	if code := exitCode(t, err); code == 0 {
		t.Fatalf("truncated input exited 0\n%s", out)
	}
	if !strings.Contains(string(out), "offset 0x1") || !strings.Contains(string(out), "truncated") {
		t.Errorf("error lacks offset/cause: %s", out)
	}
}
