// Command maod serves the MAO optimization pipeline over HTTP: an
// optimization-as-a-service daemon wrapping internal/serve.
//
//	maod -addr :7950 -workers 8 -queue 128
//
// Endpoints:
//
//	POST /v1/optimize          optimize one assembly unit (JSON in/out)
//	POST /v1/optimize/archive  optimize a multi-unit archive (maoar1
//	                           framing in, streamed NDJSON out)
//	GET  /metrics              Prometheus text-format metrics
//	GET  /healthz              liveness
//	GET  /readyz               readiness (503 once draining)
//
// Every request carries an X-Request-ID (honored inbound, generated
// otherwise), echoed in the response, the access log, and the pipeline
// spans behind the per-pass latency histograms on /metrics. Profiling
// (net/http/pprof) never rides the service port: it is served only
// from the opt-in -debug-addr listener.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops
// accepting connections and admissions, completes every in-flight
// request, then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mao/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maod: ")

	var (
		addr        = flag.String("addr", ":7950", "listen address (host:port; :0 picks a free port)")
		workers     = flag.Int("workers", 0, "optimization worker goroutines (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth; beyond it requests get 429 (0 = default)")
		batchWindow = flag.Duration("batch-window", 0, "how long to hold a request for same-spec batching (0 = default)")
		batchMax    = flag.Int("batch-max", 0, "max requests per batch (0 = default)")
		cacheSize   = flag.Int("result-cache", 0, "result-cache entries, 0 = default, -1 disables")
		pipeWorkers = flag.Int("pipeline-workers", 1, "intra-unit pass parallelism (1 = deterministic order is free)")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline (0 = default)")
		maxDeadline = flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = default)")
		maxBody     = flag.Int64("max-source-bytes", 0, "max request body size (0 = default)")
		maxUnits    = flag.Int("max-archive-units", 0, "max units per archive request (0 = default)")
		quotaRate   = flag.Float64("quota-rate", 0, "per-client quota tokens per second (0 = quotas disabled)")
		quotaBurst  = flag.Int("quota-burst", 0, "per-client quota bucket capacity (0 = default)")
		drainWait   = flag.Duration("drain-timeout", 5*time.Minute, "how long to wait for in-flight requests on shutdown")
		quiet       = flag.Bool("quiet", false, "suppress access logs")
		debugAddr   = flag.String("debug-addr", "", "opt-in debug listener for net/http/pprof and /debug/scope (empty = disabled); bind it to localhost")
		flightSize  = flag.Int("flight-records", 0, "flight-recorder ring size, 0 = default, -1 disables")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: maod [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		ResultCacheEntries: *cacheSize,
		PipelineWorkers:    *pipeWorkers,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		MaxSourceBytes:     *maxBody,
		MaxArchiveUnits:    *maxUnits,
		QuotaRate:          *quotaRate,
		QuotaBurst:         *quotaBurst,
		FlightRecords:      *flightSize,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// The profiling plane is a separate, opt-in listener: pprof exposes
	// process internals, so it never rides on the service port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listen: %v", err)
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler()}
		log.Printf("debug (pprof, scope) listening on %s", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("debug serve: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Graceful drain, in two stages. Close first: it stops admission
	// (new optimize requests answer 503, /readyz flips), flushes every
	// batch still waiting out its window, and runs every admitted
	// request to completion — no admitted request is dropped, and none
	// waits for a batch timer. Shutdown then closes the listener and
	// waits for the handlers to finish writing their responses.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	log.Printf("drained, exiting")
}
