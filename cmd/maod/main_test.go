package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildMaod(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maod")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startMaod boots the daemon on a free port and returns its base URL,
// the running command, and a buffer accumulating its stderr.
func startMaod(t *testing.T, extraFlags ...string) (string, *exec.Cmd, *lockedBuffer) {
	t.Helper()
	bin := buildMaod(t)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraFlags...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The first stderr line announces the bound address.
	sc := bufio.NewScanner(stderr)
	if !sc.Scan() {
		t.Fatalf("daemon exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line: %q", line)
	}
	addr := line[i+len(marker):]
	buf := &lockedBuffer{}
	go func() {
		for sc.Scan() {
			buf.append(sc.Text() + "\n")
		}
	}()
	return "http://" + addr, cmd, buf
}

type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) append(s string) { l.mu.Lock(); l.b.WriteString(s); l.mu.Unlock() }
func (l *lockedBuffer) String() string  { l.mu.Lock(); defer l.mu.Unlock(); return l.b.String() }

const daemonSource = `	.text
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
.Lz:
	ret
	.size f,.-f
`

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestDaemonEndToEnd(t *testing.T) {
	base, _, _ := startMaod(t)

	if code, body := getBody(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := getBody(t, base+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", code, body)
	}

	req, _ := json.Marshal(map[string]any{
		"source": daemonSource, "spec": "REDTEST:REDMOV",
	})
	resp, err := http.Post(base+"/v1/optimize", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/v1/optimize = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Assembly string                    `json:"assembly"`
		Stats    map[string]map[string]int `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.Assembly, "testl") {
		t.Error("redundant test survived the service pipeline")
	}
	if out.Stats["REDTEST"]["removed"] != 1 {
		t.Errorf("stats = %v", out.Stats)
	}

	if code, body := getBody(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, `maod_requests_total{code="200"}`) ||
		!strings.Contains(body, "maod_request_duration_seconds_bucket") {
		t.Errorf("/metrics = %d, missing request metrics:\n%s", code, body)
	}
}

// TestDaemonGracefulDrain delivers SIGTERM while a request is still
// held in the batching window and asserts the request completes with
// 200 and the daemon exits 0.
func TestDaemonGracefulDrain(t *testing.T) {
	base, cmd, errlog := startMaod(t, "-batch-window", "30s", "-quiet")

	type answer struct {
		code int
		err  error
	}
	got := make(chan answer, 1)
	go func() {
		req, _ := json.Marshal(map[string]any{"source": daemonSource, "spec": "REDTEST"})
		resp, err := http.Post(base+"/v1/optimize", "application/json", bytes.NewReader(req))
		if err != nil {
			got <- answer{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- answer{code: resp.StatusCode}
	}()

	// Wait until the request is admitted (visible in the queue gauge):
	// with a 30s batch window it then sits pending until drain flushes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := getBody(t, base+"/metrics")
		if strings.Contains(body, "maod_queue_depth 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request never queued:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-got:
		if a.err != nil || a.code != 200 {
			t.Errorf("in-flight request during drain: code=%d err=%v", a.code, a.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("daemon exit status after SIGTERM: %v\nstderr:\n%s", err, errlog.String())
	}
	if !strings.Contains(errlog.String(), "drained") {
		t.Errorf("drain not logged:\n%s", errlog.String())
	}
}

func TestDaemonRejectsArgs(t *testing.T) {
	bin := buildMaod(t)
	out, err := exec.Command(bin, "positional").CombinedOutput()
	if err == nil {
		t.Errorf("positional args must fail:\n%s", out)
	}
}
