// Command maotop is a live terminal dashboard for a MAO fleet: it
// polls the router's and every shard's /metrics (and, optionally,
// their MAOSCOPE flight recorders) and renders per-shard QPS,
// cache-hit rate, queue depth, quota rejects, request latency
// percentiles, and a pass-latency heatmap. Stdlib only — the same
// hand-rolled Prometheus parser (internal/scope) that the CI fleet
// step uses.
//
//	maotop -router http://localhost:7960            # discover shards
//	maotop -shards http://a:7950,http://b:7950      # routerless
//	maotop -router ... -debug http://localhost:7961 # + flight recorders
//	maotop -router ... -once -json                  # one sample, JSON
//
// Shards are discovered from the router's maorouter_shard_healthy
// series when -shards is not given. -once -json emits one aggregated
// sample as JSON and exits, so scripts and CI consume exactly the
// aggregation the dashboard displays.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mao/internal/scope"
)

type passStat struct {
	Pass   string  `json:"pass"`
	Count  float64 `json:"count"`
	MeanMS float64 `json:"mean_ms"`
}

type shardView struct {
	URL          string     `json:"url"`
	Up           bool       `json:"up"`                // its /metrics answered
	Healthy      *bool      `json:"healthy,omitempty"` // router's verdict, absent without a router
	QPS          float64    `json:"qps"`
	Requests     float64    `json:"requests_total"`
	CacheHitRate float64    `json:"cache_hit_rate"`
	QueueDepth   float64    `json:"queue_depth"`
	Inflight     float64    `json:"inflight"`
	QueueP50MS   float64    `json:"queue_p50_ms"`
	QuotaRejects float64    `json:"quota_rejects_total"`
	P50MS        float64    `json:"p50_ms"`
	P99MS        float64    `json:"p99_ms"`
	Goroutines   float64    `json:"goroutines"`
	Passes       []passStat `json:"passes"`
}

type routerView struct {
	URL           string  `json:"url"`
	HealthyShards float64 `json:"healthy_shards"`
	Retries       float64 `json:"retries_total"`
	NoShard       float64 `json:"no_shard_total"`
}

type flightEntry struct {
	Source string             `json:"source"`
	Record scope.FlightRecord `json:"record"`
}

type fleetView struct {
	Router  *routerView   `json:"router,omitempty"`
	Shards  []shardView   `json:"shards"`
	Errors  []flightEntry `json:"errors,omitempty"`
	Slowest []flightEntry `json:"slowest,omitempty"`
}

// sample is one poll of every exposition plane.
type sample struct {
	at     time.Time
	router scope.Metrics            // nil: no router or fetch failed
	shards map[string]scope.Metrics // nil value: shard down
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maotop: ")

	var (
		routerURL = flag.String("router", "", "maorouter base URL (shards discovered from its metrics)")
		shardsCSV = flag.String("shards", "", "comma-separated shard base URLs (overrides discovery)")
		debugCSV  = flag.String("debug", "", "comma-separated -debug-addr base URLs to poll for flight records")
		interval  = flag.Duration("interval", 2*time.Second, "poll interval")
		once      = flag.Bool("once", false, "poll once, print, exit")
		asJSON    = flag.Bool("json", false, "emit JSON instead of the dashboard (with -once: one sample)")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*routerURL == "" && *shardsCSV == "") {
		fmt.Fprintln(os.Stderr, "usage: maotop -router URL | -shards URL[,URL...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	shards := splitCSV(*shardsCSV)
	if len(shards) == 0 {
		var err error
		shards, err = discoverShards(client, *routerURL)
		if err != nil {
			log.Fatalf("discovering shards from %s: %v", *routerURL, err)
		}
	}
	debugs := splitCSV(*debugCSV)

	cur := collect(client, *routerURL, shards)
	if *once {
		view := buildView(nil, cur, *routerURL, shards)
		attachFlight(client, debugs, &view)
		render(view, *asJSON)
		// One-shot mode is what CI consumes: an unreachable or
		// unparseable exposition plane is a failure, not a dash.
		if *routerURL != "" && cur.router == nil {
			log.Fatalf("router %s: /metrics unreachable or unparseable", *routerURL)
		}
		for _, s := range view.Shards {
			if !s.Up {
				log.Fatalf("shard %s: /metrics unreachable or unparseable", s.URL)
			}
		}
		return
	}
	for {
		time.Sleep(*interval)
		prev := cur
		cur = collect(client, *routerURL, shards)
		view := buildView(&prev, cur, *routerURL, shards)
		attachFlight(client, debugs, &view)
		if !*asJSON {
			fmt.Print("\x1b[2J\x1b[H") // clear + home
		}
		render(view, *asJSON)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// discoverShards reads the shard list off the router's
// maorouter_shard_healthy series — the labels are the configured
// shard base URLs.
func discoverShards(client *http.Client, routerURL string) ([]string, error) {
	m, err := fetchMetrics(client, routerURL)
	if err != nil {
		return nil, err
	}
	var shards []string
	for _, s := range m["maorouter_shard_healthy"] {
		if u := s.Labels["shard"]; u != "" {
			shards = append(shards, u)
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no maorouter_shard_healthy series on %s/metrics", routerURL)
	}
	sort.Strings(shards)
	return shards, nil
}

func fetchMetrics(client *http.Client, base string) (scope.Metrics, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: status %d", base, resp.StatusCode)
	}
	return scope.ParseProm(resp.Body)
}

func collect(client *http.Client, routerURL string, shards []string) sample {
	s := sample{at: time.Now(), shards: make(map[string]scope.Metrics, len(shards))}
	if routerURL != "" {
		if m, err := fetchMetrics(client, routerURL); err == nil {
			s.router = m
		}
	}
	for _, u := range shards {
		if m, err := fetchMetrics(client, u); err == nil {
			s.shards[u] = m
		}
	}
	return s
}

// metricSum totals every sample of a metric across its label sets
// (e.g. per-client quota rejects → fleet rejects).
func metricSum(m scope.Metrics, name string) float64 {
	var t float64
	for _, s := range m[name] {
		t += s.Value
	}
	return t
}

// buildView aggregates one sample (plus the previous one, for rates)
// into the dashboard's view. Without a previous sample, QPS is the
// lifetime average (requests_total / uptime).
func buildView(prev *sample, cur sample, routerURL string, shards []string) fleetView {
	view := fleetView{}
	if cur.router != nil {
		rv := routerView{URL: routerURL}
		for _, s := range cur.router["maorouter_shard_healthy"] {
			rv.HealthyShards += s.Value
		}
		rv.Retries, _ = cur.router.Value("maorouter_retries_total")
		rv.NoShard, _ = cur.router.Value("maorouter_no_shard_total")
		view.Router = &rv
	}
	for _, u := range shards {
		sv := shardView{URL: u, Passes: []passStat{}}
		if cur.router != nil {
			if h, ok := cur.router.Labeled("maorouter_shard_healthy", map[string]string{"shard": u}); ok {
				healthy := h == 1
				sv.Healthy = &healthy
			}
		}
		m := cur.shards[u]
		if m == nil {
			view.Shards = append(view.Shards, sv)
			continue
		}
		sv.Up = true
		sv.Requests, _ = m.Value("maod_requests_total")
		if prev != nil && prev.shards[u] != nil {
			pr, _ := prev.shards[u].Value("maod_requests_total")
			if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
				sv.QPS = (sv.Requests - pr) / dt
			}
		} else if up, ok := m.Value("maod_uptime_seconds"); ok && up > 0 {
			sv.QPS = sv.Requests / up
		}
		hits, _ := m.Value("maod_result_cache_hits_total")
		misses, _ := m.Value("maod_result_cache_misses_total")
		if hits+misses > 0 {
			sv.CacheHitRate = hits / (hits + misses)
		}
		sv.QueueDepth, _ = m.Value("maod_queue_depth")
		sv.Inflight, _ = m.Value("maod_inflight")
		sv.QuotaRejects = metricSum(m, "maod_quota_rejects_total")
		sv.Goroutines, _ = m.Value("maod_go_goroutines")
		if q, ok := m.Quantile("maod_request_duration_seconds", nil, 0.50); ok {
			sv.P50MS = q * 1000
		}
		if q, ok := m.Quantile("maod_request_duration_seconds", nil, 0.99); ok {
			sv.P99MS = q * 1000
		}
		if q, ok := m.Quantile("maod_queue_wait_seconds", nil, 0.50); ok {
			sv.QueueP50MS = q * 1000
		}
		sv.Passes = passStats(m)
		view.Shards = append(view.Shards, sv)
	}
	return view
}

// passStats reduces the per-pass latency histograms to (count, mean)
// per pass — the heatmap's cells.
func passStats(m scope.Metrics) []passStat {
	byPass := map[string]*passStat{}
	for _, s := range m["maod_pass_duration_seconds_count"] {
		p := s.Labels["pass"]
		if p == "" {
			continue
		}
		byPass[p] = &passStat{Pass: p, Count: s.Value}
	}
	for _, s := range m["maod_pass_duration_seconds_sum"] {
		if st := byPass[s.Labels["pass"]]; st != nil && st.Count > 0 {
			st.MeanMS = s.Value / st.Count * 1000
		}
	}
	out := make([]passStat, 0, len(byPass))
	for _, st := range byPass {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pass < out[j].Pass })
	return out
}

// attachFlight polls each debug listener's flight recorder and folds
// the errored and slowest requests into the view.
func attachFlight(client *http.Client, debugs []string, view *fleetView) {
	for _, base := range debugs {
		view.Errors = append(view.Errors, fetchFlight(client, base, "errors")...)
		view.Slowest = append(view.Slowest, fetchFlight(client, base, "slowest")...)
	}
	sort.Slice(view.Slowest, func(i, j int) bool {
		return view.Slowest[i].Record.DurNS > view.Slowest[j].Record.DurNS
	})
	if len(view.Slowest) > 8 {
		view.Slowest = view.Slowest[:8]
	}
	sort.Slice(view.Errors, func(i, j int) bool {
		return view.Errors[i].Record.TimeUnixNS > view.Errors[j].Record.TimeUnixNS
	})
	if len(view.Errors) > 8 {
		view.Errors = view.Errors[:8]
	}
}

func fetchFlight(client *http.Client, base, viewName string) []flightEntry {
	resp, err := client.Get(base + "/debug/scope/" + viewName)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var payload struct {
		Process string               `json:"process"`
		Records []scope.FlightRecord `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	out := make([]flightEntry, 0, len(payload.Records))
	for _, r := range payload.Records {
		out = append(out, flightEntry{Source: payload.Process + " " + base, Record: r})
	}
	return out
}

// heatShades maps a 0..1 intensity onto terminal cells.
var heatShades = []string{"  ", "░░", "▒▒", "▓▓", "██"}

func render(view fleetView, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(view); err != nil {
			log.Fatal(err)
		}
		return
	}
	if view.Router != nil {
		fmt.Printf("router %s  healthy %g  retries %g  unrouted %g\n\n",
			view.Router.URL, view.Router.HealthyShards, view.Router.Retries, view.Router.NoShard)
	}
	fmt.Printf("%-28s %-5s %8s %7s %6s %6s %7s %8s %8s\n",
		"SHARD", "STATE", "QPS", "HIT%", "QUEUE", "INFL", "QREJ", "P50ms", "P99ms")
	for _, s := range view.Shards {
		state := "up"
		if !s.Up {
			state = "DOWN"
		} else if s.Healthy != nil && !*s.Healthy {
			state = "unrtd" // serving /metrics but failing the router's probe
		}
		fmt.Printf("%-28s %-5s %8.1f %7.1f %6.0f %6.0f %7.0f %8.2f %8.2f\n",
			trimURL(s.URL), state, s.QPS, s.CacheHitRate*100,
			s.QueueDepth, s.Inflight, s.QuotaRejects, s.P50MS, s.P99MS)
	}

	// Pass-latency heatmap: rows are passes, columns are shards, cell
	// intensity is that shard's mean pass latency normalized to the
	// hottest cell.
	passes := map[string]bool{}
	maxMean := 0.0
	for _, s := range view.Shards {
		for _, p := range s.Passes {
			passes[p.Pass] = true
			if p.MeanMS > maxMean {
				maxMean = p.MeanMS
			}
		}
	}
	if len(passes) > 0 && maxMean > 0 {
		names := make([]string, 0, len(passes))
		for p := range passes {
			names = append(names, p)
		}
		sort.Strings(names)
		fmt.Printf("\npass latency heatmap (mean, max %.2fms)\n", maxMean)
		for _, p := range names {
			fmt.Printf("%-14s", p)
			for _, s := range view.Shards {
				mean := 0.0
				for _, st := range s.Passes {
					if st.Pass == p {
						mean = st.MeanMS
					}
				}
				idx := int(mean / maxMean * float64(len(heatShades)-1))
				fmt.Print(heatShades[idx], " ")
			}
			fmt.Println()
		}
	}

	if len(view.Errors) > 0 {
		fmt.Println("\nrecent errors")
		for _, e := range view.Errors {
			fmt.Printf("  [%s] %s %s status %d: %s\n",
				e.Source, e.Record.TraceID, e.Record.Path, e.Record.Status, e.Record.Err)
		}
	}
	if len(view.Slowest) > 0 {
		fmt.Println("\nslowest requests")
		for _, e := range view.Slowest {
			fmt.Printf("  [%s] %s %s %.2fms cache=%s shard=%s\n",
				e.Source, e.Record.TraceID, e.Record.Path,
				float64(e.Record.DurNS)/1e6, e.Record.Cache, e.Record.Shard)
		}
	}
}

// trimURL drops the scheme so shard columns stay narrow.
func trimURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	return strings.TrimPrefix(u, "https://")
}
