// Command maorouter fronts a fleet of maod shards: a shared-nothing
// shard router wrapping internal/router.
//
//	maorouter -addr :7960 -shards http://10.0.0.1:7950,http://10.0.0.2:7950
//
// The router computes the daemon's own content-addressed result-cache
// key for each optimize request and consistent-hashes it onto a shard,
// so repeats of a request always land where their cached answer lives
// — fleet-wide cache hit rate stays near single-daemon levels instead
// of diluting by the shard count. Shards are health-checked via
// /readyz; a request whose shard is down is retried once on the next
// shard in ring order.
//
// Concurrent identical optimize requests coalesce onto one shard
// forward (disable with -no-coalesce): the followers replay the
// leader's buffered response and report X-Mao-Cache: coalesced in the
// response header, the access log, and the flight recorder.
//
// Endpoints:
//
//	GET /metrics   the router's own Prometheus text-format metrics
//	               (per-shard traffic/errors/latency, health, retries,
//	               rebalances)
//	GET /healthz   router liveness (independent of shard health)
//	*              everything else proxies to a shard
//
// Every proxied request carries a MAOSCOPE trace context: an inbound
// X-Mao-Trace header is adopted (originated otherwise), the shard
// receives it re-parented under the router's hop span, and a traced
// /v1/optimize response comes back with the hop span — shard choice,
// attempt count, failover attribution — spliced into the span tree.
// A JSON access log line per request (shard, cache verdict, trace ID)
// goes to stderr unless -quiet; the flight recorder of recent,
// slowest, and errored requests is served from the opt-in -debug-addr
// listener under /debug/scope/.
//
// On SIGTERM or SIGINT the router stops accepting connections, lets
// in-flight proxied requests (including NDJSON archive streams)
// finish, then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mao/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maorouter: ")

	var (
		addr          = flag.String("addr", ":7960", "listen address (host:port; :0 picks a free port)")
		shards        = flag.String("shards", "", "comma-separated maod shard base URLs (required)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		probeInterval = flag.Duration("probe-interval", time.Second, "shard /readyz probe interval (negative disables)")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "timeout of one /readyz probe")
		maxBody       = flag.Int64("max-body-bytes", 0, "max proxied request body size (0 = default)")
		drainWait     = flag.Duration("drain-timeout", 5*time.Minute, "how long to wait for in-flight requests on shutdown")
		noCoalesce    = flag.Bool("no-coalesce", false, "disable in-flight miss coalescing (identical concurrent requests sharing one shard forward)")
		quiet         = flag.Bool("quiet", false, "suppress the JSON access log")
		debugAddr     = flag.String("debug-addr", "", "opt-in debug listener for net/http/pprof and /debug/scope (empty = disabled); bind it to localhost")
		flightSize    = flag.Int("flight-records", 0, "flight-recorder ring size, 0 = default, -1 disables")
	)
	flag.Parse()
	if flag.NArg() != 0 || *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: maorouter -shards URL[,URL...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	cfg := router.Config{
		Shards:          shardList,
		VNodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		MaxBodyBytes:    *maxBody,
		FlightRecords:   *flightSize,
		DisableCoalesce: *noCoalesce,
		Logf:            log.Printf,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The signal handler is installed before the address is announced:
	// a supervisor that SIGTERMs the moment it sees the announce line
	// must hit graceful drain, not the default termination.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: rt}
	log.Printf("listening on %s (%d shards)", ln.Addr(), len(shardList))

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// The debug plane (pprof + flight recorder) is a separate, opt-in
	// listener: it exposes process internals and other clients'
	// request metadata, so it never rides the proxy port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listen: %v", err)
		}
		debugSrv = &http.Server{Handler: rt.DebugHandler()}
		log.Printf("debug (pprof, scope) listening on %s", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("debug serve: %v", err)
			}
		}()
	}

	select {
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	rt.Close()
	if debugSrv != nil {
		debugSrv.Close()
	}
	log.Printf("drained, exiting")
}
