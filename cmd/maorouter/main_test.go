package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mao/internal/serve"
)

func buildMaorouter(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maorouter")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startMaorouter boots the router binary against the given shard URLs
// and returns its base URL and the running command.
func startMaorouter(t *testing.T, shardURLs []string, extraFlags ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := buildMaorouter(t)
	args := append([]string{"-addr", "127.0.0.1:0", "-shards", strings.Join(shardURLs, ",")}, extraFlags...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	sc := bufio.NewScanner(stderr)
	if !sc.Scan() {
		t.Fatalf("router exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line: %q", line)
	}
	addr := strings.Fields(line[i+len(marker):])[0]
	go func() {
		for sc.Scan() {
		}
	}()
	return "http://" + addr, cmd
}

const routerSource = `	.text
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
.Lz:
	ret
	.size f,.-f
`

// TestRouterBinaryEndToEnd: the built binary fronts two in-process
// maod shards; an optimize round-trips with shard/request-ID headers
// and the router's /metrics and /healthz answer.
func TestRouterBinaryEndToEnd(t *testing.T) {
	var shardURLs []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		shardURLs = append(shardURLs, ts.URL)
	}
	base, _ := startMaorouter(t, shardURLs)

	body, _ := json.Marshal(map[string]any{"source": routerSource, "spec": "REDTEST:REDMOV"})
	resp, err := http.Post(base+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/v1/optimize via router = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Assembly string `json:"assembly"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.Assembly, "testl") {
		t.Error("redundant test survived the routed pipeline")
	}
	if got := resp.Header.Get("X-Mao-Shard"); got != shardURLs[0] && got != shardURLs[1] {
		t.Errorf("X-Mao-Shard = %q", got)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID on routed response")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "maorouter_requests_total") {
		t.Errorf("/metrics missing router series:\n%s", mb)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Errorf("/healthz = %d", hresp.StatusCode)
	}
}

// TestRouterBinaryGracefulDrain: SIGTERM mid-idle exits 0.
func TestRouterBinaryGracefulDrain(t *testing.T) {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	_, cmd := startMaorouter(t, []string{ts.URL})
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("router exit status after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router never exited after SIGTERM")
	}
}

// TestRouterBinaryRejectsBadUsage: missing -shards and positional args
// both fail fast.
func TestRouterBinaryRejectsBadUsage(t *testing.T) {
	bin := buildMaorouter(t)
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Errorf("missing -shards must fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "-shards", "http://x:1", "positional").CombinedOutput(); err == nil {
		t.Errorf("positional args must fail:\n%s", out)
	}
}
