// Uarchprobe is the micro-architectural parameter-detection tool of
// paper Section IV: it generates microbenchmarks from constraints,
// runs them in isolation on a simulated processor, and infers the
// machine's parameters from PMU counters — instruction latencies, the
// Loop Stream Detector window, the branch-predictor index granularity,
// the result-forwarding bandwidth, and the sustained IPC.
//
// Because the simulated processors' parameters are explicit, every
// inference printed here can be compared with ground truth, which is
// the point: the same probes, pointed at real silicon, discover what
// the manuals do not say.
//
// Usage:
//
//	uarchprobe [-model core2|opteron|p4]
package main

import (
	"flag"
	"fmt"
	"log"

	"mao/internal/mbench"
	"mao/internal/uarch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uarchprobe: ")
	model := flag.String("model", "core2", "target model: core2, opteron, p4")
	flag.Parse()

	var m *uarch.CPUModel
	switch *model {
	case "core2":
		m = uarch.Core2()
	case "opteron":
		m = uarch.Opteron()
	case "p4":
		m = uarch.P4()
	default:
		log.Fatalf("unknown model %q", *model)
	}
	proc := mbench.NewProcessor(m)
	fmt.Printf("probing simulated %s\n\n", m.Name)

	fmt.Println("instruction latencies (Figure 6 case study):")
	for _, tpl := range []string{
		"addl %r, %w", "subl %r, %w", "xorl %r, %w",
		"imull %r, %w", "addq %r, %w", "shll $3, %r",
	} {
		lat, err := mbench.InstructionLatency(proc, tpl)
		if err != nil {
			log.Fatalf("latency(%q): %v", tpl, err)
		}
		fmt.Printf("  %-18s %d cycle(s)\n", tpl, lat)
	}

	lsd, err := mbench.DetectLSDWindow(proc)
	if err != nil {
		log.Fatal(err)
	}
	if lsd == 0 {
		fmt.Printf("\nloop stream detector: not present")
	} else {
		fmt.Printf("\nloop stream detector: loops up to %d decode lines stream", lsd)
	}
	fmt.Printf("  (model: HasLSD=%v MaxLines=%d)\n", m.HasLSD, m.LSDMaxLines)

	gran, err := mbench.DetectBranchAliasGranularity(proc)
	if err != nil {
		fmt.Printf("branch alias granularity: %v\n", err)
	} else {
		fmt.Printf("branch alias granularity: %d bytes  (model: PC>>%d)\n", gran, m.BPIndexShift)
	}

	fwd, err := mbench.DetectForwardingBandwidth(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result forwarding bandwidth: %d consumers/cycle  (model: %d)\n",
		fwd, m.FwdBandwidth)

	ipc, err := mbench.DetectSustainedIPC(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sustained ALU IPC: %d  (model: %d-wide decode, 3 ALU ports)\n",
		ipc, m.DecodeWidth)
}
