package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestProbeModels(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "uarchprobe")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	for model, wants := range map[string][]string{
		"core2":   {"loops up to 4 decode lines stream", "granularity: 32 bytes", "bandwidth: 2"},
		"opteron": {"not present", "granularity: 16 bytes", "bandwidth: 3"},
	} {
		out, err := exec.Command(bin, "-model", model).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", model, err, out)
		}
		for _, w := range wants {
			if !strings.Contains(string(out), w) {
				t.Errorf("%s output missing %q:\n%s", model, w, out)
			}
		}
	}
	if err := exec.Command(bin, "-model", "bogus").Run(); err == nil {
		t.Error("bogus model accepted")
	}
}
