// Command maoload drives load against a running maod daemon (or a
// maorouter-fronted fleet) and reports throughput, latency
// percentiles, result-cache hit rate, and — in router mode — the
// per-shard breakdown.
//
//	maoload -addr http://localhost:7950 -c 8 -n 200 \
//	        -spec REDTEST:REDMOV internal/corpus/testdata/*.s
//
//	maoload -addr http://localhost:7960 -router -clients 16 -zipf 1.2 \
//	        -n 2000 internal/corpus/testdata/*.s
//
// Each worker POSTs assembly fixtures to /v1/optimize. By default it
// cycles through them uniformly; -zipf s (s > 1) switches to a
// zipf-skewed traffic model — a few hot fixtures dominate, as real
// build traffic does — and -clients N spreads requests over N tenants
// (zipf-mixed too, via the X-Mao-Client header) to exercise per-client
// quotas. -seed makes the mix reproducible.
//
// The run is bounded by -n (total requests) or -duration, whichever is
// set; with both, the first reached wins.
//
// Cache disposition is read from the X-Mao-Cache response header and
// the serving shard from X-Mao-Shard (set by maorouter); -router
// requires the latter and fails the run if it is absent, so a
// misconfigured target cannot masquerade as a fleet. The report splits
// verdicts three ways — hit, miss, coalesced (the request rode another
// identical in-flight run) — and -dup-rate p makes fraction p of
// requests re-send the hottest fixture, piling identical requests up
// in flight to exercise coalescing deliberately.
//
// -trace originates a fresh MAOSCOPE X-Mao-Trace context per request
// and asks for the span tree back (?trace=1), reporting how many
// spans each response stitched — through a router that includes the
// hop span. -archive switches each request to one maoar1 archive of
// all fixtures against /v1/optimize/archive and reports
// time-to-first-record percentiles alongside total latency, so
// streaming responsiveness is no longer hidden inside stream totals.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mao/internal/scope"
)

type result struct {
	status    int
	latency   time.Duration
	ttfr      time.Duration // archive mode: time to first NDJSON record
	cache     string        // X-Mao-Cache: "hit", "miss", "coalesced", or ""
	shard     string        // X-Mao-Shard, when fronted by maorouter
	spans     int           // -trace: spans in the response's tree
	hits      int           // archive mode: per-record cache verdicts
	misses    int
	coalesced int
	err       error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maoload: ")

	var (
		addr     = flag.String("addr", "http://127.0.0.1:7950", "maod (or maorouter) base URL")
		conc     = flag.Int("c", 4, "concurrent workers")
		total    = flag.Int("n", 100, "total requests (0 = unbounded, use -duration)")
		duration = flag.Duration("duration", 0, "stop after this long (0 = unbounded, use -n)")
		spec     = flag.String("spec", "REDTEST:REDMOV", "pass pipeline sent with every request")
		check    = flag.Bool("check", false, "request static-checker diagnostics")
		noCache  = flag.Bool("no-cache", false, "bypass the server's result cache")
		clients  = flag.Int("clients", 1, "distinct tenants to spread requests over (X-Mao-Client)")
		dupRate  = flag.Float64("dup-rate", 0, "fraction [0,1] of requests that re-send the hottest fixture, so identical requests overlap in flight and exercise miss coalescing")
		zipfS    = flag.Float64("zipf", 0, "zipf skew s (> 1) for fixture and client selection; 0 = uniform cycling")
		seed     = flag.Int64("seed", 1, "seed for the zipf traffic model")
		router   = flag.Bool("router", false, "target is a maorouter: require X-Mao-Shard and report the per-shard breakdown")
		traced   = flag.Bool("trace", false, "originate an X-Mao-Trace context per request and fetch the span tree (?trace=1)")
		archive  = flag.Bool("archive", false, "send all fixtures as one maoar1 archive per request; report time-to-first-record")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: maoload [flags] fixture.s [fixture.s ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *total <= 0 && *duration <= 0 {
		log.Fatal("one of -n or -duration must be positive")
	}
	if *zipfS != 0 && *zipfS <= 1 {
		log.Fatal("-zipf must be > 1 (Go's zipf generator requires s > 1)")
	}
	if *clients < 1 {
		log.Fatal("-clients must be >= 1")
	}
	if *dupRate < 0 || *dupRate > 1 {
		log.Fatal("-dup-rate must be in [0, 1]")
	}

	// Pre-encode one request body per fixture — and, in archive mode,
	// one maoar1 archive of all of them.
	var bodies [][]byte
	var archiveBody []byte
	{
		var ar bytes.Buffer
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			b, err := json.Marshal(map[string]any{
				"name":   path,
				"source": string(src),
				"spec":   *spec,
				"options": map[string]any{
					"check":    *check,
					"no_cache": *noCache,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			bodies = append(bodies, b)
			fmt.Fprintf(&ar, "maoar1 %d %d\n", len(path), len(src))
			ar.WriteString(path)
			ar.Write(src)
		}
		archiveBody = ar.Bytes()
	}
	archiveURL := *addr + "/v1/optimize/archive?" + url.Values{
		"spec":     {*spec},
		"check":    {boolParam(*check)},
		"no_cache": {boolParam(*noCache)},
	}.Encode()
	optimizeURL := *addr + "/v1/optimize"
	if *traced {
		archiveURL += "&trace=1"
		optimizeURL += "?trace=1"
	}

	var (
		seq      atomic.Int64 // next request index; also the stop counter
		deadline time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	stop := func(i int64) bool {
		if *total > 0 && i >= int64(*total) {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	results := make(chan result, 1024)
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker generators keep the mix reproducible for a
			// given (-seed, -c) without cross-worker locking.
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			var fixturePick, clientPick *rand.Zipf
			if *zipfS > 1 {
				fixturePick = rand.NewZipf(rng, *zipfS, 1, uint64(len(bodies)-1))
				if *clients > 1 {
					clientPick = rand.NewZipf(rng, *zipfS, 1, uint64(*clients-1))
				}
			}
			for {
				i := seq.Add(1) - 1
				if stop(i) {
					return
				}
				fixture := int(i % int64(len(bodies)))
				if fixturePick != nil {
					fixture = int(fixturePick.Uint64())
				}
				if *dupRate > 0 && rng.Float64() < *dupRate {
					// Duplicate traffic: collapse onto the first fixture
					// so concurrent identical requests pile up in flight.
					fixture = 0
				}
				tenant := int(i % int64(*clients))
				if clientPick != nil {
					tenant = int(clientPick.Uint64())
				}
				var req *http.Request
				var err error
				if *archive {
					req, err = http.NewRequest("POST", archiveURL, bytes.NewReader(archiveBody))
					if req != nil {
						req.Header.Set("Content-Type", "application/x-mao-archive")
					}
				} else {
					req, err = http.NewRequest("POST", optimizeURL, bytes.NewReader(bodies[fixture]))
					if req != nil {
						req.Header.Set("Content-Type", "application/json")
					}
				}
				if err != nil {
					results <- result{err: err}
					continue
				}
				if *clients > 1 {
					req.Header.Set("X-Mao-Client", fmt.Sprintf("tenant-%02d", tenant))
				}
				if *traced {
					// Originate the trace context: this process is the
					// root of the cross-process span tree.
					req.Header.Set(scope.TraceHeader, scope.NewContext().Header())
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					results <- result{err: err, latency: time.Since(t0)}
					continue
				}
				res := result{
					status: resp.StatusCode,
					cache:  resp.Header.Get("X-Mao-Cache"),
					shard:  resp.Header.Get("X-Mao-Shard"),
				}
				if *archive {
					readArchiveStream(resp, t0, &res)
				} else if *traced {
					var out struct {
						Trace []json.RawMessage `json:"trace"`
					}
					json.NewDecoder(resp.Body).Decode(&out)
					res.spans = len(out.Trace)
				} else {
					// Drain so the connection is reused.
					var sink json.RawMessage
					json.NewDecoder(resp.Body).Decode(&sink)
				}
				resp.Body.Close()
				res.latency = time.Since(t0)
				results <- res
			}
		}(w)
	}
	go func() { wg.Wait(); close(results) }()

	type shardTally struct{ reqs, hits, misses, coalesced int }
	var (
		lats       []time.Duration
		ttfrs      []time.Duration
		byStatus   = map[int]int{}
		shardStats = map[string]*shardTally{}
		errCount   int
		firstErr   error
	)
	var total2xx, total4xx, total5xx, cacheHits, cacheMisses, cacheCoalesced, tracedN, tracedSpans int
	for r := range results {
		if r.err != nil {
			errCount++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		byStatus[r.status]++
		switch {
		case r.status >= 200 && r.status < 300:
			total2xx++
			// Only successful responses enter the percentile set: a 429
			// turned around in microseconds would otherwise drag p50 down
			// and make an overloaded server look fast.
			lats = append(lats, r.latency)
			switch r.cache {
			case "hit":
				cacheHits++
			case "miss":
				cacheMisses++
			case "coalesced":
				cacheCoalesced++
			}
			// Archive streams report per-record verdicts instead of a
			// response-level header.
			cacheHits += r.hits
			cacheMisses += r.misses
			cacheCoalesced += r.coalesced
			if r.ttfr > 0 {
				ttfrs = append(ttfrs, r.ttfr)
			}
			if r.spans > 0 {
				tracedN++
				tracedSpans += r.spans
			}
			if r.shard != "" {
				st := shardStats[r.shard]
				if st == nil {
					st = &shardTally{}
					shardStats[r.shard] = st
				}
				st.reqs++
				switch r.cache {
				case "hit":
					st.hits++
				case "miss":
					st.misses++
				case "coalesced":
					st.coalesced++
				}
			}
		case r.status >= 400 && r.status < 500:
			total4xx++
		case r.status >= 500:
			total5xx++
		}
	}
	elapsed := time.Since(start)

	n := total2xx + total4xx + total5xx + errCount
	fmt.Printf("requests: %d in %v (%.1f req/s, %d workers)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), *conc)
	fmt.Printf("classes: 2xx %d  4xx %d  5xx %d  transport-errors %d\n",
		total2xx, total4xx, total5xx, errCount)
	var codes []int
	for c := range byStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  status %d: %d\n", c, byStatus[c])
	}
	if errCount > 0 {
		fmt.Printf("  transport errors: %d (first: %v)\n", errCount, firstErr)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		fmt.Printf("latency (2xx only): p50 %v  p90 %v  p99 %v  max %v\n",
			pct(.50).Round(time.Microsecond), pct(.90).Round(time.Microsecond),
			pct(.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	if len(ttfrs) > 0 {
		sort.Slice(ttfrs, func(i, j int) bool { return ttfrs[i] < ttfrs[j] })
		fpct := func(p float64) time.Duration { return ttfrs[int(p*float64(len(ttfrs)-1))] }
		fmt.Printf("time-to-first-record: p50 %v  p90 %v  p99 %v  max %v\n",
			fpct(.50).Round(time.Microsecond), fpct(.90).Round(time.Microsecond),
			fpct(.99).Round(time.Microsecond), ttfrs[len(ttfrs)-1].Round(time.Microsecond))
	}
	if tracedN > 0 {
		fmt.Printf("traces: %d responses carried a span tree (avg %.1f spans)\n",
			tracedN, float64(tracedSpans)/float64(tracedN))
	}
	if cacheHits+cacheMisses+cacheCoalesced > 0 {
		// Coalesced requests rode another request's run: neither a hit
		// (nothing was cached yet) nor a miss (no pipeline run of their
		// own). The hit rate stays hits/(hits+misses) so adding -dup-rate
		// cannot flatter it.
		fmt.Printf("result cache: %d hits, %d misses, %d coalesced (%.1f%% hit rate)\n",
			cacheHits, cacheMisses, cacheCoalesced,
			100*float64(cacheHits)/float64(max(cacheHits+cacheMisses, 1)))
	}
	if len(shardStats) > 0 {
		var shards []string
		for s := range shardStats {
			shards = append(shards, s)
		}
		sort.Strings(shards)
		fmt.Printf("shards: %d served this run\n", len(shards))
		for _, s := range shards {
			st := shardStats[s]
			rate := 0.0
			if st.hits+st.misses > 0 {
				rate = 100 * float64(st.hits) / float64(st.hits+st.misses)
			}
			fmt.Printf("  shard %s: %d reqs, %d hits, %d misses, %d coalesced (%.1f%% hit rate)\n",
				s, st.reqs, st.hits, st.misses, st.coalesced, rate)
		}
	}
	if *router && len(shardStats) == 0 && total2xx > 0 {
		fmt.Println("-router set but no X-Mao-Shard header seen: target is not a maorouter")
		os.Exit(1)
	}
	if *traced && !*archive && total2xx > 0 && tracedN == 0 {
		fmt.Println("-trace set but no response carried a span tree")
		os.Exit(1)
	}
	if n == errCount || byStatus[http.StatusOK] == 0 {
		os.Exit(1)
	}
}

func boolParam(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// readArchiveStream consumes one NDJSON archive response, stamping
// the time the first record arrived (the streaming-latency number a
// total hides) and tallying per-record cache verdicts.
func readArchiveStream(resp *http.Response, t0 time.Time, res *result) {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		if res.ttfr == 0 {
			res.ttfr = time.Since(t0)
		}
		var rec struct {
			Cache string `json:"cache"`
		}
		if json.Unmarshal(sc.Bytes(), &rec) == nil {
			switch rec.Cache {
			case "hit":
				res.hits++
			case "miss":
				res.misses++
			case "coalesced":
				res.coalesced++
			}
		}
	}
}
