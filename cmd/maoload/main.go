// Command maoload drives load against a running maod daemon and
// reports throughput and latency percentiles.
//
//	maoload -addr http://localhost:7950 -c 8 -n 200 \
//	        -spec REDTEST:REDMOV internal/corpus/testdata/*.s
//
// Each worker cycles through the given assembly fixtures, POSTing them
// to /v1/optimize. The run is bounded by -n (total requests) or
// -duration, whichever is set; with both, the first reached wins.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	status  int
	latency time.Duration
	err     error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maoload: ")

	var (
		addr     = flag.String("addr", "http://127.0.0.1:7950", "maod base URL")
		conc     = flag.Int("c", 4, "concurrent workers")
		total    = flag.Int("n", 100, "total requests (0 = unbounded, use -duration)")
		duration = flag.Duration("duration", 0, "stop after this long (0 = unbounded, use -n)")
		spec     = flag.String("spec", "REDTEST:REDMOV", "pass pipeline sent with every request")
		check    = flag.Bool("check", false, "request static-checker diagnostics")
		noCache  = flag.Bool("no-cache", false, "bypass the server's result cache")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: maoload [flags] fixture.s [fixture.s ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *total <= 0 && *duration <= 0 {
		log.Fatal("one of -n or -duration must be positive")
	}

	// Pre-encode one request body per fixture.
	var bodies [][]byte
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		b, err := json.Marshal(map[string]any{
			"name":   path,
			"source": string(src),
			"spec":   *spec,
			"options": map[string]any{
				"check":    *check,
				"no_cache": *noCache,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		bodies = append(bodies, b)
	}

	var (
		seq      atomic.Int64 // next request index; also the stop counter
		deadline time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	stop := func(i int64) bool {
		if *total > 0 && i >= int64(*total) {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	results := make(chan result, 1024)
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1) - 1
				if stop(i) {
					return
				}
				body := bodies[i%int64(len(bodies))]
				t0 := time.Now()
				resp, err := client.Post(*addr+"/v1/optimize", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					results <- result{err: err, latency: lat}
					continue
				}
				// Drain so the connection is reused.
				var sink json.RawMessage
				json.NewDecoder(resp.Body).Decode(&sink)
				resp.Body.Close()
				results <- result{status: resp.StatusCode, latency: lat}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	var (
		lats     []time.Duration
		byStatus = map[int]int{}
		errCount int
		firstErr error
	)
	var total2xx, total4xx, total5xx int
	for r := range results {
		if r.err != nil {
			errCount++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		byStatus[r.status]++
		switch {
		case r.status >= 200 && r.status < 300:
			total2xx++
			// Only successful responses enter the percentile set: a 429
			// turned around in microseconds would otherwise drag p50 down
			// and make an overloaded server look fast.
			lats = append(lats, r.latency)
		case r.status >= 400 && r.status < 500:
			total4xx++
		case r.status >= 500:
			total5xx++
		}
	}
	elapsed := time.Since(start)

	n := total2xx + total4xx + total5xx + errCount
	fmt.Printf("requests: %d in %v (%.1f req/s, %d workers)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), *conc)
	fmt.Printf("classes: 2xx %d  4xx %d  5xx %d  transport-errors %d\n",
		total2xx, total4xx, total5xx, errCount)
	var codes []int
	for c := range byStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  status %d: %d\n", c, byStatus[c])
	}
	if errCount > 0 {
		fmt.Printf("  transport errors: %d (first: %v)\n", errCount, firstErr)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		fmt.Printf("latency (2xx only): p50 %v  p90 %v  p99 %v  max %v\n",
			pct(.50).Round(time.Microsecond), pct(.90).Round(time.Microsecond),
			pct(.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	if n == errCount || byStatus[http.StatusOK] == 0 {
		os.Exit(1)
	}
}
