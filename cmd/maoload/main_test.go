package main

import (
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mao/internal/serve"
)

func buildMaoload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maoload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestLoadGeneratorAgainstService(t *testing.T) {
	s := serve.New(serve.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}

	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "4", "-n", "40", "-spec", "REDTEST:REDMOV", "-no-cache",
	}, fixtures...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("maoload: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "requests: 40 in ") {
		t.Errorf("request count missing:\n%s", report)
	}
	if !strings.Contains(report, "status 200: 40") {
		t.Errorf("not all requests succeeded:\n%s", report)
	}
	if !regexp.MustCompile(`latency: p50 \S+  p90 \S+  p99 \S+  max \S+`).MatchString(report) {
		t.Errorf("latency percentiles missing:\n%s", report)
	}
}

func TestLoadGeneratorUsage(t *testing.T) {
	bin := buildMaoload(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-fixture invocation must fail")
	}
}
