package main

import (
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mao/internal/serve"
)

func buildMaoload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maoload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestLoadGeneratorAgainstService(t *testing.T) {
	s := serve.New(serve.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}

	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "4", "-n", "40", "-spec", "REDTEST:REDMOV", "-no-cache",
	}, fixtures...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("maoload: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "requests: 40 in ") {
		t.Errorf("request count missing:\n%s", report)
	}
	if !strings.Contains(report, "status 200: 40") {
		t.Errorf("not all requests succeeded:\n%s", report)
	}
	if !strings.Contains(report, "classes: 2xx 40  4xx 0  5xx 0  transport-errors 0") {
		t.Errorf("error-class breakdown missing or wrong:\n%s", report)
	}
	if !regexp.MustCompile(`latency \(2xx only\): p50 \S+  p90 \S+  p99 \S+  max \S+`).MatchString(report) {
		t.Errorf("latency percentiles missing:\n%s", report)
	}
}

// TestLoadGeneratorReportsErrorClasses is the regression test for the
// silent-error bug: a server answering nothing but 429 must be
// reported as such — errors classified and counted, no latency line
// fabricated from error turnaround times, and a failing exit code.
func TestLoadGeneratorReportsErrorClasses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "2", "-n", "10", "-spec", "REDTEST",
	}, fixtures[0])
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Errorf("all-429 run exited 0:\n%s", out)
	}
	report := string(out)
	if !strings.Contains(report, "classes: 2xx 0  4xx 10  5xx 0  transport-errors 0") {
		t.Errorf("429s not classified:\n%s", report)
	}
	if !strings.Contains(report, "status 429: 10") {
		t.Errorf("per-status count missing:\n%s", report)
	}
	if strings.Contains(report, "latency (2xx only):") {
		t.Errorf("latency line fabricated from non-2xx turnarounds:\n%s", report)
	}
}

func TestLoadGeneratorUsage(t *testing.T) {
	bin := buildMaoload(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-fixture invocation must fail")
	}
}
