package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mao/internal/pass"
	"mao/internal/router"
	"mao/internal/serve"
)

func buildMaoload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maoload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestLoadGeneratorAgainstService(t *testing.T) {
	s := serve.New(serve.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}

	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "4", "-n", "40", "-spec", "REDTEST:REDMOV", "-no-cache",
	}, fixtures...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("maoload: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "requests: 40 in ") {
		t.Errorf("request count missing:\n%s", report)
	}
	if !strings.Contains(report, "status 200: 40") {
		t.Errorf("not all requests succeeded:\n%s", report)
	}
	if !strings.Contains(report, "classes: 2xx 40  4xx 0  5xx 0  transport-errors 0") {
		t.Errorf("error-class breakdown missing or wrong:\n%s", report)
	}
	if !regexp.MustCompile(`latency \(2xx only\): p50 \S+  p90 \S+  p99 \S+  max \S+`).MatchString(report) {
		t.Errorf("latency percentiles missing:\n%s", report)
	}
}

// TestLoadGeneratorReportsErrorClasses is the regression test for the
// silent-error bug: a server answering nothing but 429 must be
// reported as such — errors classified and counted, no latency line
// fabricated from error turnaround times, and a failing exit code.
func TestLoadGeneratorReportsErrorClasses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "2", "-n", "10", "-spec", "REDTEST",
	}, fixtures[0])
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Errorf("all-429 run exited 0:\n%s", out)
	}
	report := string(out)
	if !strings.Contains(report, "classes: 2xx 0  4xx 10  5xx 0  transport-errors 0") {
		t.Errorf("429s not classified:\n%s", report)
	}
	if !strings.Contains(report, "status 429: 10") {
		t.Errorf("per-status count missing:\n%s", report)
	}
	if strings.Contains(report, "latency (2xx only):") {
		t.Errorf("latency line fabricated from non-2xx turnarounds:\n%s", report)
	}
}

// TestLoadGeneratorReportsCacheHitRate: with the server cache on and
// fixtures repeated, the report carries the hit/miss split read from
// X-Mao-Cache.
func TestLoadGeneratorReportsCacheHitRate(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	// Serial workers + uniform cycling: every fixture misses once,
	// every repeat hits.
	n := 3 * len(fixtures)
	bin := buildMaoload(t)
	args := append([]string{
		"-addr", ts.URL, "-c", "1", "-n", strconv.Itoa(n), "-spec", "REDTEST",
	}, fixtures...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("maoload: %v\n%s", err, out)
	}
	want := fmt.Sprintf("result cache: %d hits, %d misses", n-len(fixtures), len(fixtures))
	if !strings.Contains(string(out), want) {
		t.Errorf("report missing %q:\n%s", want, out)
	}
}

// newFleet builds f fresh maod shards and returns their URLs.
func newFleet(t *testing.T, f int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < f; i++ {
		s := serve.New(serve.Config{Workers: 2})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls = append(urls, ts.URL)
	}
	return urls
}

// roundRobinProxy is the unrouted baseline: an affinity-free front end
// that alternates shards per request, stamping X-Mao-Shard like the
// real router so maoload can attribute responses.
func roundRobinProxy(t *testing.T, shards []string) *httptest.Server {
	t.Helper()
	var proxies []*httputil.ReverseProxy
	for _, s := range shards {
		u, err := url.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		shard := s
		p := httputil.NewSingleHostReverseProxy(u)
		p.ModifyResponse = func(resp *http.Response) error {
			resp.Header.Set("X-Mao-Shard", shard)
			return nil
		}
		proxies = append(proxies, p)
	}
	var next atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proxies[int(next.Add(1))%len(proxies)].ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// hitsMisses parses "result cache: H hits, M misses" from a report.
func hitsMisses(t *testing.T, report string) (int, int) {
	t.Helper()
	m := regexp.MustCompile(`result cache: (\d+) hits, (\d+) misses`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no cache line in report:\n%s", report)
	}
	h, _ := strconv.Atoi(m[1])
	mi, _ := strconv.Atoi(m[2])
	return h, mi
}

// TestRouterModeConcentratesCacheHits is the fleet-efficiency proof:
// the same zipf-skewed multi-tenant run scores a strictly better
// fleet-wide cache hit rate through the key-affinity router than
// through an affinity-free round-robin front end, because the router
// never computes a fixture on more than one shard.
func TestRouterModeConcentratesCacheHits(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet comparison under -short")
	}
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) < 2 {
		t.Fatalf("need ≥ 2 corpus fixtures: %v", err)
	}
	bin := buildMaoload(t)
	run := func(front string, routerMode bool) string {
		args := []string{
			"-addr", front, "-c", "1", "-n", "150",
			"-spec", "REDTEST", "-clients", "8", "-zipf", "1.1", "-seed", "7",
		}
		if routerMode {
			args = append(args, "-router")
		}
		out, err := exec.Command(bin, append(args, fixtures...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("maoload against %s: %v\n%s", front, err, out)
		}
		return string(out)
	}

	// Routed fleet: 2 fresh shards behind the real key-affinity router.
	routedShards := newFleet(t, 2)
	rt, err := router.New(router.Config{Shards: routedShards, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(func() { front.Close(); rt.Close() })
	routedReport := run(front.URL, true)

	// Unrouted baseline: 2 fresh shards behind round-robin.
	baseReport := run(roundRobinProxy(t, newFleet(t, 2)).URL, false)

	routedHits, routedMisses := hitsMisses(t, routedReport)
	baseHits, baseMisses := hitsMisses(t, baseReport)
	// Key affinity means each distinct fixture misses on exactly one
	// shard; round-robin pays a cold miss per fixture per shard.
	if routedMisses > len(fixtures) {
		t.Errorf("routed fleet missed %d times for %d fixtures — affinity broken:\n%s",
			routedMisses, len(fixtures), routedReport)
	}
	if routedHits <= baseHits {
		t.Errorf("routed hit count %d not above unrouted baseline %d\nrouted:\n%s\nbaseline:\n%s",
			routedHits, baseHits, routedReport, baseReport)
	}
	if !strings.Contains(routedReport, "shards: 2 served this run") {
		t.Errorf("per-shard breakdown missing:\n%s", routedReport)
	}
	_ = baseMisses
}

// TestRouterModeRequiresShardHeader: -router against a plain daemon
// (no X-Mao-Shard) fails the run.
func TestRouterModeRequiresShardHeader(t *testing.T) {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	fixtures, _ := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	bin := buildMaoload(t)
	out, err := exec.Command(bin, "-addr", ts.URL, "-router", "-n", "4", "-spec", "REDTEST", fixtures[0]).CombinedOutput()
	if err == nil {
		t.Errorf("-router against a shardless daemon exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "not a maorouter") {
		t.Errorf("missing diagnosis:\n%s", out)
	}
}

// sleepPass mirrors the serve package's test pass: it pins a worker
// for ms[N] milliseconds, so concurrent identical requests reliably
// overlap in flight — the window miss coalescing needs.
type sleepPass struct{}

func (sleepPass) Name() string        { return "SLEEPTEST" }
func (sleepPass) Description() string { return "test pass that sleeps" }
func (sleepPass) Effectful() bool     { return true }
func (sleepPass) RunUnit(ctx *pass.Ctx) (bool, error) {
	d := time.Duration(ctx.Opts.Int("ms", 10)) * time.Millisecond
	select {
	case <-time.After(d):
		return false, nil
	case <-ctx.Context().Done():
		return false, ctx.Context().Err()
	}
}

func init() {
	if pass.Lookup("SLEEPTEST") == nil {
		pass.Register(func() pass.Pass { return sleepPass{} })
	}
}

// scrapeCounter reads one counter's value off a maod /metrics page.
func scrapeCounter(t *testing.T, baseURL, name string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("%s not found in /metrics:\n%s", name, body)
	}
	v, _ := strconv.Atoi(m[1])
	return v
}

// TestDupRateCoalescingReducesPipelineRuns is the coalescing
// regression proof: the same duplicate-heavy load (-dup-rate 1, every
// request identical, result cache off) costs strictly fewer shard-side
// pipeline runs with coalescing on than with it disabled, and the
// report carries the coalesced verdicts that explain the difference.
func TestDupRateCoalescingReducesPipelineRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("coalescing comparison under -short")
	}
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	bin := buildMaoload(t)

	run := func(cfg serve.Config) (report string, pipelineRuns int) {
		s := serve.New(cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		args := []string{
			"-addr", ts.URL, "-c", "8", "-n", "24", "-dup-rate", "1",
			"-spec", "SLEEPTEST=ms[150]:REDTEST",
		}
		out, err := exec.Command(bin, append(args, fixtures[0])...).CombinedOutput()
		if err != nil {
			t.Fatalf("maoload: %v\n%s", err, out)
		}
		return string(out), scrapeCounter(t, ts.URL, "maod_batch_jobs_total")
	}

	// The result cache is disabled on both servers: only in-flight
	// coalescing can deduplicate the identical requests.
	coalescedReport, coalescedRuns := run(serve.Config{ResultCacheEntries: -1})
	_, disabledRuns := run(serve.Config{ResultCacheEntries: -1, DisableCoalesce: true})

	if coalescedRuns >= disabledRuns {
		t.Errorf("coalescing did not reduce pipeline runs: %d with vs %d without\n%s",
			coalescedRuns, disabledRuns, coalescedReport)
	}
	m := regexp.MustCompile(`result cache: \d+ hits, \d+ misses, (\d+) coalesced`).FindStringSubmatch(coalescedReport)
	if m == nil {
		t.Fatalf("coalesced breakdown missing from report:\n%s", coalescedReport)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("report shows 0 coalesced requests despite -dup-rate 1:\n%s", coalescedReport)
	}
}

func TestLoadGeneratorUsage(t *testing.T) {
	bin := buildMaoload(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-fixture invocation must fail")
	}
}
