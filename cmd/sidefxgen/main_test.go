package main

import (
	"os"
	"strings"
	"testing"

	"mao/internal/x86/sidefx"
)

// TestGenerateMatchesCommitted regenerates the side-effect tables from
// the embedded configuration and compares with the committed
// tables.gen.go — the end-to-end version of the sidefx package's
// in-sync test.
func TestGenerateMatchesCommitted(t *testing.T) {
	table, err := sidefx.ParseConfig(sidefx.ConfigSource())
	if err != nil {
		t.Fatal(err)
	}
	generated, err := Generate(table)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("../../internal/x86/sidefx/tables.gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(generated) != string(committed) {
		t.Error("tables.gen.go is stale; re-run go generate ./internal/x86/sidefx")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	table, err := sidefx.ParseConfig("add r=1,2 w=2 fset=ALL\nmov r=1 w=2\n")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(table)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(table)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("generator output is not deterministic")
	}
	if !strings.Contains(string(a), `"add"`) || !strings.Contains(string(a), "x86.AllFlags") {
		t.Errorf("generated source malformed:\n%s", a)
	}
}
