package main

import (
	"go/token"
	"strings"
	"testing"
)

func lint(t *testing.T, src string) []Violation {
	t.Helper()
	vs, err := lintSource(token.NewFileSet(), "probe.go", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return vs
}

func TestFlagsRawListMutations(t *testing.T) {
	src := `package p

func run(ctx *Ctx) {
	ctx.Unit.List.Remove(n)
	ctx.Unit.List.Append(n)
	ctx.Unit.List.InsertBefore(a, b)
	ctx.Unit.List.InsertAfter(a, b)
	ctx.Unit.List.BumpVersion()
	u.List.Remove(n)
}
`
	vs := lint(t, src)
	if len(vs) != 6 {
		t.Fatalf("got %d violations, want 6: %+v", len(vs), vs)
	}
	if !strings.Contains(vs[0].Call, "ctx.Unit.List.Remove") {
		t.Errorf("first violation call = %q, want ctx.Unit.List.Remove", vs[0].Call)
	}
	if !strings.Contains(vs[0].Fix, "ctx.Delete") {
		t.Errorf("Remove fix = %q, want mention of ctx.Delete", vs[0].Fix)
	}
}

func TestFlagsUnitAppendWrapper(t *testing.T) {
	vs := lint(t, `package p

func run(ctx *Ctx) {
	ctx.Unit.Append(n)
}
`)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	if !strings.Contains(vs[0].Fix, "ctx.Append") {
		t.Errorf("fix = %q, want mention of ctx.Append", vs[0].Fix)
	}
}

func TestAllowsCtxHelpersAndReads(t *testing.T) {
	vs := lint(t, `package p

func run(ctx *Ctx) {
	ctx.Append(n)
	ctx.InsertBefore(a, b)
	ctx.Delete(n)
	ctx.Rewrite(n)
	ctx.MoveBefore(a, b)
	_ = ctx.Unit.List.Front()
	_ = ctx.Unit.List.Version()
	for n := u.List.Front(); n != nil; n = n.Next() {
		_ = n
	}
}
`)
	if len(vs) != 0 {
		t.Fatalf("got %d violations, want 0: %+v", len(vs), vs)
	}
}

func TestAllowsUnrelatedListTypes(t *testing.T) {
	// A field merely named List on an unrelated type still matches —
	// the linter is syntactic by design — but plain method calls and
	// non-List receivers must not.
	vs := lint(t, `package p

func run() {
	q.Append(x)
	items.Remove(3)
	s.Buf.Append(x)
}
`)
	if len(vs) != 0 {
		t.Fatalf("got %d violations, want 0: %+v", len(vs), vs)
	}
}
