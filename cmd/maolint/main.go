// Command maolint is the repository's pass-hygiene linter.
//
// Optimization passes must mutate the IR only through the pass.Ctx
// helpers (Ctx.Append, Ctx.InsertBefore, Ctx.InsertAfter, Ctx.Delete,
// Ctx.Rewrite, Ctx.MoveBefore, Ctx.MoveToEnd): the helpers stamp
// provenance onto every touched node and keep the unit's version —
// which fragment dirtying and the verifier's snapshot guard depend on
// — in sync. A pass that calls the raw ir.List mutators (or the
// Unit.Append wrapper) silently produces nodes without provenance and
// edits the certifier cannot attribute, so maolint rejects those call
// forms syntactically in pass packages.
//
// Usage:
//
//	maolint [-tests] [-json] [dir ...]
//
// Each dir is walked non-recursively for .go files (_test.go files are
// skipped unless -tests is given). With no dirs, internal/passes is
// linted. Exit status is 1 when any violation is found, 2 on usage or
// parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// rawListMutators are the ir.List methods that restructure the node
// list or bump its version without stamping provenance.
var rawListMutators = map[string]bool{
	"Append":       true,
	"InsertBefore": true,
	"InsertAfter":  true,
	"Remove":       true,
	"BumpVersion":  true,
}

// Violation is one flagged call site.
type Violation struct {
	Pos  string `json:"pos"` // file:line:col
	Call string `json:"call"`
	Fix  string `json:"fix"`
}

func main() {
	tests := flag.Bool("tests", false, "lint _test.go files too")
	asJSON := flag.Bool("json", false, "emit violations as JSON")
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{filepath.Join("internal", "passes")}
	}

	var violations []Violation
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maolint: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			if !*tests && strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "maolint: %v\n", err)
				os.Exit(2)
			}
			vs, err := lintSource(fset, path, src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "maolint: %v\n", err)
				os.Exit(2)
			}
			violations = append(violations, vs...)
		}
	}
	sort.Slice(violations, func(i, j int) bool { return violations[i].Pos < violations[j].Pos })

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(violations) // encoding []Violation cannot fail
	} else {
		for _, v := range violations {
			fmt.Printf("%s: %s: %s\n", v.Pos, v.Call, v.Fix)
		}
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// lintSource parses one file and returns its violations.
func lintSource(fset *token.FileSet, path string, src []byte) ([]Violation, error) {
	f, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, err
	}
	var out []Violation
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		switch {
		case recv.Sel.Name == "List" && rawListMutators[method]:
			out = append(out, Violation{
				Pos:  fset.Position(call.Pos()).String(),
				Call: renderSel(sel),
				Fix:  "mutate through the pass.Ctx helper (" + ctxEquivalent(method) + ") so provenance and versioning stay correct",
			})
		case recv.Sel.Name == "Unit" && method == "Append":
			out = append(out, Violation{
				Pos:  fset.Position(call.Pos()).String(),
				Call: renderSel(sel),
				Fix:  "mutate through the pass.Ctx helper (ctx.Append) so provenance and versioning stay correct",
			})
		}
		return true
	})
	return out, nil
}

// ctxEquivalent names the Ctx helper replacing a raw List method.
func ctxEquivalent(method string) string {
	switch method {
	case "Remove":
		return "ctx.Delete"
	case "BumpVersion":
		return "ctx.Rewrite"
	default:
		return "ctx." + method
	}
}

// renderSel prints the full dotted selector chain of the offending
// call ("ctx.Unit.List.Remove").
func renderSel(sel *ast.SelectorExpr) string {
	var parts []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			walk(x.X)
			parts = append(parts, x.Sel.Name)
		case *ast.Ident:
			parts = append(parts, x.Name)
		default:
			parts = append(parts, "(...)")
		}
	}
	walk(sel)
	return strings.Join(parts, ".")
}
