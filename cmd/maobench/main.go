// Maobench regenerates every table and figure of the MAO paper's
// evaluation on the repository's simulated micro-architectures and
// synthetic workloads.
//
// Usage:
//
//	maobench                     # run every experiment
//	maobench -experiment fig1-nop
//	maobench -list
//	maobench -scale 0.1          # shrink corpora for a quick pass
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mao/internal/bench"
	"mao/internal/experiments"
	"mao/internal/relax"
	"mao/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maobench: ")
	name := flag.String("experiment", "", "run a single experiment by name")
	list := flag.Bool("list", false, "list experiment names")
	scale := flag.Float64("scale", 1.0, "corpus scale factor (1.0 = the paper's sizes)")
	workers := flag.Int("j", 0, "worker pool for parallel-safe function passes (0 = GOMAXPROCS, 1 = sequential)")
	timings := flag.Bool("timings", false, "print an aggregate per-pass timing table for all pipelines run")
	flag.Parse()
	bench.Workers = *workers
	bench.EncodeCache = relax.NewCache()
	if *timings {
		bench.Tracer = trace.NewCollector()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.Name, e.Title)
		}
		return
	}
	run := experiments.All()
	if *name != "" {
		e := experiments.Find(*name)
		if e == nil {
			log.Fatalf("unknown experiment %q (use -list)", *name)
		}
		run = []experiments.Experiment{*e}
	}
	for _, e := range run {
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, *scale); err != nil {
			log.Fatalf("experiment %s: %v", e.Name, err)
		}
		fmt.Println()
	}
	if *timings {
		fmt.Println("=== per-pass timings (all pipelines) ===")
		if err := trace.WriteSummary(os.Stdout, bench.Tracer); err != nil {
			log.Fatal(err)
		}
	}
}
