// Maobench regenerates every table and figure of the MAO paper's
// evaluation on the repository's simulated micro-architectures and
// synthetic workloads.
//
// Usage:
//
//	maobench                     # run every experiment
//	maobench -experiment fig1-nop
//	maobench -list
//	maobench -scale 0.1          # shrink corpora for a quick pass
//	maobench -json               # write BENCH_relax/pipeline/memo.json
//	maobench -json -baseline .   # also fail on >2x ns/op regression
//	maobench -verify             # measure translation-validation overhead
//	maobench -memo -scale 0.1    # verify the pipeline memo on the corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mao/internal/bench"
	"mao/internal/experiments"
	"mao/internal/relax"
	"mao/internal/trace"
)

// regressionFactor is the ns/op ratio -baseline tolerates before
// failing. Loose on purpose: the smoke catches order-of-magnitude
// breakage (incremental relaxation degrading to full rebuilds), not
// machine-to-machine noise.
const regressionFactor = 2.0

// memoHitRateFloor is the memo hit rate `maobench -memo` demands from
// the repeat-corpus replay: with the default 20 rounds only the fill
// round may miss, so anything at or below 0.9 means functions failed
// to memoize at all (or the memo silently invalidated between rounds).
const memoHitRateFloor = 0.9

// memoVerifyRounds is how often -memo replays each corpus unit through
// the shared memo (round 1 fills, every later round must hit).
const memoVerifyRounds = 20

// runMemoVerify replays the corpus through a shared pipeline memo,
// failing on any output that differs from a cold run or on a hit rate
// at or below memoHitRateFloor.
func runMemoVerify(scale float64) error {
	results, err := bench.MemoCorpusVerify(scale, memoVerifyRounds)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("memo %-28s %3d units %5d functions %3d rounds  hit-rate %.3f  byte-identical\n",
			r.Spec, r.Sources, r.Functions, r.Rounds, r.HitRate)
		if r.HitRate <= memoHitRateFloor {
			return fmt.Errorf("memo %s: hit rate %.3f is not above %.1f",
				r.Spec, r.HitRate, memoHitRateFloor)
		}
	}
	return nil
}

// runBenchJSON measures the repeated-relaxation, repeated-pipeline and
// warm-memo benchmarks, writes BENCH_relax.json, BENCH_pipeline.json
// and BENCH_memo.json into outDir, and — when baselineDir is set —
// fails on a >2x ns/op regression against the baselines checked in
// there.
func runBenchJSON(outDir, baselineDir string) error {
	relaxRes, err := bench.MeasureRelaxBench()
	if err != nil {
		return err
	}
	pipeRes, err := bench.MeasurePipelineBench()
	if err != nil {
		return err
	}
	memoRes, err := bench.MeasureMemoBench(pipeRes)
	if err != nil {
		return err
	}
	for _, e := range []struct {
		file string
		res  *bench.BenchResult
	}{
		{"BENCH_relax.json", relaxRes},
		{"BENCH_pipeline.json", pipeRes},
		{"BENCH_memo.json", memoRes},
	} {
		out := filepath.Join(outDir, e.file)
		if err := bench.WriteBenchJSON(out, e.res); err != nil {
			return err
		}
		fmt.Printf("%-20s %10.0f ns/op %8d B/op %6d allocs/op", e.res.Benchmark,
			e.res.NsPerOp, e.res.BytesPerOp, e.res.AllocsPerOp)
		if e.res.Speedup > 0 {
			fmt.Printf("  %5.1fx vs reference  %.2f frag-reuse", e.res.Speedup, e.res.FragmentReuseRate)
		}
		fmt.Printf("  -> %s\n", out)
		if baselineDir != "" {
			if err := bench.CompareBaseline(e.res, filepath.Join(baselineDir, e.file), regressionFactor); err != nil {
				return err
			}
		}
	}
	if baselineDir != "" {
		fmt.Printf("baseline check passed (tolerance %.1fx)\n", regressionFactor)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maobench: ")
	name := flag.String("experiment", "", "run a single experiment by name")
	list := flag.Bool("list", false, "list experiment names")
	scale := flag.Float64("scale", 1.0, "corpus scale factor (1.0 = the paper's sizes)")
	workers := flag.Int("j", 0, "worker pool for parallel-safe function passes (0 = GOMAXPROCS, 1 = sequential)")
	timings := flag.Bool("timings", false, "print an aggregate per-pass timing table for all pipelines run")
	jsonOut := flag.Bool("json", false, "measure relaxation/pipeline benchmarks and write BENCH_relax.json + BENCH_pipeline.json")
	verifyOH := flag.Bool("verify", false, "measure the translation-validation overhead of a verified pipeline")
	memoVerify := flag.Bool("memo", false, "replay the corpus through a shared pipeline memo; fail unless hit rate > 0.9 and output is byte-identical to cold runs")
	outDir := flag.String("outdir", ".", "directory BENCH_*.json files are written to (with -json)")
	baseline := flag.String("baseline", "", "directory holding baseline BENCH_*.json; exit non-zero on >2x ns/op regression (with -json)")
	flag.Parse()
	bench.Workers = *workers
	bench.EncodeCache = relax.NewCache()
	if *timings {
		bench.Tracer = trace.NewCollector()
	}

	if *jsonOut {
		if err := runBenchJSON(*outDir, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *memoVerify {
		if err := runMemoVerify(*scale); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *verifyOH {
		r, err := bench.MeasureVerifyOverhead()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verify overhead (%s): plain %.2f ms/op, verified %.2f ms/op, %.2fx\n",
			r.Pipeline, r.PlainNsPerOp/1e6, r.VerifyNsPerOp/1e6, r.Overhead)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.Name, e.Title)
		}
		return
	}
	run := experiments.All()
	if *name != "" {
		e := experiments.Find(*name)
		if e == nil {
			log.Fatalf("unknown experiment %q (use -list)", *name)
		}
		run = []experiments.Experiment{*e}
	}
	for _, e := range run {
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, *scale); err != nil {
			log.Fatalf("experiment %s: %v", e.Name, err)
		}
		fmt.Println()
	}
	if *timings {
		fmt.Println("=== per-pass timings (all pipelines) ===")
		if err := trace.WriteSummary(os.Stdout, bench.Tracer); err != nil {
			log.Fatal(err)
		}
	}
}
