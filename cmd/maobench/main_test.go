package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maobench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestListMode(t *testing.T) {
	bin := build(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig1-nop", "fig7-aggregate", "ablations", "relax"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("list missing %s:\n%s", want, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	bin := build(t)
	out, err := exec.Command(bin, "-experiment", "relax", "-scale", "0.02").CombinedOutput()
	if err != nil {
		t.Fatalf("maobench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "eb7f") {
		t.Errorf("relax output missing the paper's encoding:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	bin := build(t)
	if err := exec.Command(bin, "-experiment", "nope").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
